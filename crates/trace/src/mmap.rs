//! Whole-file byte access for zero-copy decode.
//!
//! [`TraceData`] presents a trace as one contiguous `&[u8]`. On 64-bit
//! Linux and macOS it memory-maps the file (read-only, private), so chunk
//! payloads are decoded straight out of the page cache without ever being
//! copied into a heap buffer; everywhere else — and for non-seekable
//! inputs via [`TraceData::from_vec`] — it falls back to reading the file
//! into memory. Either way the bytes are immutable and shareable across
//! threads, which is what lets the prefetch decoder and the simulator look
//! at the same mapping concurrently.

use std::io;
use std::path::Path;

/// An immutable, contiguous view of a whole trace file.
#[derive(Debug)]
pub struct TraceData(Repr);

#[derive(Debug)]
enum Repr {
    Heap(Vec<u8>),
    #[cfg(all(
        any(target_os = "linux", target_os = "macos"),
        target_pointer_width = "64"
    ))]
    Mapped(map::Mapping),
}

impl TraceData {
    /// Opens `path`, memory-mapping it where supported and falling back to
    /// a plain read (empty files, exotic platforms, mmap failure).
    pub fn open(path: &Path) -> io::Result<Self> {
        #[cfg(all(
            any(target_os = "linux", target_os = "macos"),
            target_pointer_width = "64"
        ))]
        {
            let file = std::fs::File::open(path)?;
            let len = file.metadata()?.len();
            if len > 0 {
                if let Some(m) = map::Mapping::new(&file, len as usize) {
                    return Ok(Self(Repr::Mapped(m)));
                }
            }
        }
        Ok(Self(Repr::Heap(std::fs::read(path)?)))
    }

    /// Wraps bytes already in memory — the path for non-seekable inputs
    /// (pipes, network streams) that were slurped elsewhere.
    pub fn from_vec(bytes: Vec<u8>) -> Self {
        Self(Repr::Heap(bytes))
    }

    /// The file's bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.0 {
            Repr::Heap(v) => v,
            #[cfg(all(
                any(target_os = "linux", target_os = "macos"),
                target_pointer_width = "64"
            ))]
            Repr::Mapped(m) => m.bytes(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// True for a zero-byte file.
    pub fn is_empty(&self) -> bool {
        self.bytes().is_empty()
    }

    /// Whether this view is an actual memory mapping (false on the heap
    /// fallback) — observability for tests and `trace_tool info`.
    pub fn is_mapped(&self) -> bool {
        match &self.0 {
            Repr::Heap(_) => false,
            #[cfg(all(
                any(target_os = "linux", target_os = "macos"),
                target_pointer_width = "64"
            ))]
            Repr::Mapped(_) => true,
        }
    }
}

#[cfg(all(
    any(target_os = "linux", target_os = "macos"),
    target_pointer_width = "64"
))]
mod map {
    //! The one unsafe corner of the crate: a minimal read-only `mmap`.
    //!
    //! std already links the platform C library, so the two calls are
    //! declared directly instead of pulling in a bindings crate. The
    //! mapping is `PROT_READ`/`MAP_PRIVATE` over the whole file: nothing
    //! can write through it, and a private mapping of an immutable length
    //! is safe to alias from any thread, which justifies the `Send`/`Sync`
    //! impls. (A concurrent truncation of the underlying file could still
    //! fault — the same contract every mmap-based reader accepts.)
    #![allow(unsafe_code)]

    use std::fs::File;
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::AsRawFd;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;

    pub(super) struct Mapping {
        ptr: *mut c_void,
        len: usize,
    }

    unsafe impl Send for Mapping {}
    unsafe impl Sync for Mapping {}

    impl std::fmt::Debug for Mapping {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Mapping").field("len", &self.len).finish()
        }
    }

    impl Mapping {
        /// Maps the first `len` bytes of `file`; `None` if the kernel
        /// refuses (the caller falls back to a heap read).
        pub(super) fn new(file: &File, len: usize) -> Option<Self> {
            if len == 0 {
                return None;
            }
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr.is_null() || ptr as isize == -1 {
                None
            } else {
                Some(Self { ptr, len })
            }
        }

        pub(super) fn bytes(&self) -> &[u8] {
            unsafe { std::slice::from_raw_parts(self.ptr.cast::<u8>(), self.len) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("wp-trace-mmap-{}-{name}", std::process::id()))
    }

    #[test]
    fn open_sees_file_bytes() {
        let path = temp("bytes.bin");
        std::fs::write(&path, b"hello trace").unwrap();
        let d = TraceData::open(&path).unwrap();
        assert_eq!(d.bytes(), b"hello trace");
        assert_eq!(d.len(), 11);
        assert!(!d.is_empty());
        #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
        assert!(d.is_mapped(), "linux should take the mmap path");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_uses_heap_fallback() {
        let path = temp("empty.bin");
        std::fs::write(&path, b"").unwrap();
        let d = TraceData::open(&path).unwrap();
        assert!(d.is_empty());
        assert!(!d.is_mapped());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn from_vec_is_zero_copy_of_the_vec() {
        let d = TraceData::from_vec(vec![1, 2, 3]);
        assert_eq!(d.bytes(), &[1, 2, 3]);
        assert!(!d.is_mapped());
    }

    #[test]
    fn missing_file_errors() {
        assert!(TraceData::open(&temp("nope.bin")).is_err());
    }

    #[test]
    fn mapping_is_shareable_across_threads() {
        let path = temp("shared.bin");
        std::fs::write(&path, vec![7u8; 4096]).unwrap();
        let d = std::sync::Arc::new(TraceData::open(&path).unwrap());
        let d2 = d.clone();
        let h = std::thread::spawn(move || d2.bytes().iter().map(|&b| u64::from(b)).sum::<u64>());
        assert_eq!(h.join().unwrap(), 7 * 4096);
        assert_eq!(d.len(), 4096);
        std::fs::remove_file(&path).unwrap();
    }
}
