//! Streaming `.wpt` encoder.

use std::io::Write;
use std::path::Path;

use wp_mem::LineAddr;

use crate::bits::{bits_for, pack};
use crate::crc::crc32;
use crate::meta::{PoolMeta, StreamMeta};
use crate::varint::{put_varint, zigzag};
use crate::{TraceError, MAGIC, TAG_CHUNK, TAG_END, TAG_STREAM_DEF, VERSION};

/// Events buffered per stream before a chunk is emitted.
pub const DEFAULT_CHUNK_EVENTS: usize = 4096;

#[derive(Debug, Clone, Copy)]
struct Pending {
    gap: u32,
    line: u64,
    write: bool,
}

#[derive(Debug, Default)]
struct StreamState {
    pending: Vec<Pending>,
    /// Line of the last event already emitted in a chunk.
    last_line: u64,
    /// Whether any chunk has been emitted for this stream.
    started: bool,
    events: u64,
    instrs: u64,
}

/// Streaming encoder for `.wpt` traces.
///
/// Events are buffered per stream and emitted as column-coded chunks of
/// [`DEFAULT_CHUNK_EVENTS`] events, so memory use is bounded regardless of
/// trace length. Always call [`finish`](TraceWriter::finish): it flushes
/// buffered events and writes the `End` block readers use to distinguish a
/// complete file from a truncated one. Dropping an unfinished writer
/// finishes it best-effort, swallowing errors.
///
/// # Example
///
/// ```
/// use wp_mem::LineAddr;
/// use wp_trace::{TraceReader, TraceWriter};
///
/// let mut buf = Vec::new();
/// let mut w = TraceWriter::new(&mut buf).unwrap();
/// let s = w.add_stream("demo", &[]).unwrap();
/// for i in 0..10u64 {
///     w.record(s, 40, LineAddr(1024 + i), false).unwrap();
/// }
/// w.finish().unwrap();
/// drop(w);
///
/// let mut r = TraceReader::new(&buf[..]).unwrap();
/// let (stream, first) = r.next_record().unwrap().unwrap();
/// assert_eq!((stream, first.line), (s, LineAddr(1024)));
/// ```
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    streams: Vec<StreamState>,
    chunk_events: usize,
    finished: bool,
}

impl TraceWriter<std::io::BufWriter<std::fs::File>> {
    /// Creates (truncating) `path` and writes the file header.
    pub fn create(path: &Path) -> Result<Self, TraceError> {
        let file = std::fs::File::create(path)?;
        Self::new(std::io::BufWriter::new(file))
    }
}

impl<W: Write> TraceWriter<W> {
    /// Wraps `out`, writing the file header immediately.
    pub fn new(mut out: W) -> Result<Self, TraceError> {
        out.write_all(&MAGIC)?;
        out.write_all(&VERSION.to_le_bytes())?;
        out.write_all(&0u16.to_le_bytes())?; // flags
        Ok(Self {
            out,
            streams: Vec::new(),
            chunk_events: DEFAULT_CHUNK_EVENTS,
            finished: false,
        })
    }

    /// Overrides the chunk size (clamped to `1..=65536`) — mainly for
    /// tests that want to exercise chunk boundaries cheaply.
    pub fn with_chunk_events(mut self, n: usize) -> Self {
        self.chunk_events = n.clamp(1, 65536);
        self
    }

    /// Declares a new stream, returning its id. Must be called before any
    /// [`record`](TraceWriter::record) for that stream.
    pub fn add_stream(&mut self, name: &str, pools: &[PoolMeta]) -> Result<u16, TraceError> {
        assert!(!self.finished, "writer already finished");
        assert!(
            self.streams.len() < usize::from(u16::MAX),
            "too many streams"
        );
        let id = self.streams.len() as u16;
        let def = StreamMeta {
            id,
            name: name.to_string(),
            pools: pools.to_vec(),
        };
        self.write_block(TAG_STREAM_DEF, &def.encode())?;
        self.streams.push(StreamState::default());
        Ok(id)
    }

    /// Appends one event to `stream`.
    ///
    /// # Panics
    ///
    /// Panics if `stream` was not returned by
    /// [`add_stream`](TraceWriter::add_stream) or the writer is finished.
    pub fn record(
        &mut self,
        stream: u16,
        gap_instrs: u32,
        line: LineAddr,
        is_write: bool,
    ) -> Result<(), TraceError> {
        assert!(!self.finished, "writer already finished");
        let chunk_events = self.chunk_events;
        let s = self
            .streams
            .get_mut(usize::from(stream))
            .expect("unknown stream id");
        s.pending.push(Pending {
            gap: gap_instrs,
            line: line.0,
            write: is_write,
        });
        s.events += 1;
        s.instrs += u64::from(gap_instrs);
        if s.pending.len() >= chunk_events {
            self.flush_stream(stream)?;
        }
        Ok(())
    }

    /// Events recorded so far on `stream`.
    pub fn stream_events(&self, stream: u16) -> u64 {
        self.streams[usize::from(stream)].events
    }

    /// Flushes buffered events and writes the `End` block. Idempotent;
    /// recording after `finish` panics.
    pub fn finish(&mut self) -> Result<(), TraceError> {
        if self.finished {
            return Ok(());
        }
        for id in 0..self.streams.len() as u16 {
            self.flush_stream(id)?;
        }
        let mut payload = Vec::new();
        put_varint(&mut payload, self.streams.len() as u64);
        for (id, s) in self.streams.iter().enumerate() {
            put_varint(&mut payload, id as u64);
            put_varint(&mut payload, s.events);
            put_varint(&mut payload, s.instrs);
        }
        self.write_block(TAG_END, &payload)?;
        self.out.flush()?;
        self.finished = true;
        Ok(())
    }

    fn flush_stream(&mut self, stream: u16) -> Result<(), TraceError> {
        let s = &mut self.streams[usize::from(stream)];
        if s.pending.is_empty() {
            return Ok(());
        }
        // The base line is the previous event's line; for a stream's
        // first chunk it is the first event's own line, which is then
        // *not* delta-coded (the reader reconstructs it from the base
        // alone), so one absolute address never widens a whole column.
        let (base_line, skip) = if s.started {
            (s.last_line, 0)
        } else {
            (s.pending[0].line, 1)
        };

        let gaps: Vec<u64> = s.pending.iter().map(|p| u64::from(p.gap)).collect();
        let min_gap = *gaps.iter().min().expect("non-empty");
        let gap_bits = bits_for(gaps.iter().map(|g| g - min_gap).max().expect("non-empty"));

        let mut prev = base_line;
        let deltas: Vec<u64> = s
            .pending
            .iter()
            .skip(skip)
            .map(|p| {
                let d = zigzag(p.line.wrapping_sub(prev) as i64);
                prev = p.line;
                d
            })
            .collect();
        let min_zz = deltas.iter().min().copied().unwrap_or(0);
        let addr_bits = bits_for(deltas.iter().map(|d| d - min_zz).max().unwrap_or(0));

        let writes = s.pending.iter().filter(|p| p.write).count();

        let mut payload = Vec::new();
        put_varint(&mut payload, u64::from(stream));
        put_varint(&mut payload, s.pending.len() as u64);
        put_varint(&mut payload, base_line);
        put_varint(&mut payload, min_gap);
        payload.push(gap_bits);
        pack(
            &mut payload,
            &gaps.iter().map(|g| g - min_gap).collect::<Vec<_>>(),
            gap_bits,
        );
        if writes == 0 {
            payload.push(0); // all reads
        } else if writes == s.pending.len() {
            payload.push(1); // all writes
        } else {
            payload.push(2);
            let flags: Vec<u64> = s.pending.iter().map(|p| u64::from(p.write)).collect();
            pack(&mut payload, &flags, 1);
        }
        put_varint(&mut payload, min_zz);
        payload.push(addr_bits);
        pack(
            &mut payload,
            &deltas.iter().map(|d| d - min_zz).collect::<Vec<_>>(),
            addr_bits,
        );

        let s = &mut self.streams[usize::from(stream)];
        s.last_line = s.pending.last().expect("non-empty").line;
        s.started = true;
        s.pending.clear();
        self.write_block(TAG_CHUNK, &payload)
    }

    fn write_block(&mut self, tag: u8, payload: &[u8]) -> Result<(), TraceError> {
        let mut head = vec![tag];
        put_varint(&mut head, payload.len() as u64);
        head.extend_from_slice(&crc32(payload).to_le_bytes());
        self.out.write_all(&head)?;
        self.out.write_all(payload)?;
        Ok(())
    }
}

impl<W: Write> Drop for TraceWriter<W> {
    fn drop(&mut self) {
        let _ = self.finish();
    }
}
