//! CRC-32 (IEEE 802.3, the zlib polynomial) for block payload checksums.
//!
//! Hand-rolled because the workspace builds with no external crates; the
//! standard reflected table-driven form, one table built at first use.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    })
}

/// CRC-32 of `data` (init `!0`, final xor `!0` — matches zlib's `crc32`).
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = !0u32;
    for &b in data {
        c = t[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"whirlpool trace chunk payload".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut copy = data.clone();
                copy[i] ^= 1 << bit;
                assert_ne!(crc32(&copy), base);
            }
        }
    }
}
