//! Streaming `.wpt` decoder and whole-file summarization.

use std::collections::VecDeque;
use std::io::Read;
use std::path::Path;

use crate::batch::{chunk_stream_id, decode_chunk_body, DecodeScratch, EventBatch};
use crate::crc::crc32;
use crate::meta::{PoolLookup, StreamMeta, TraceRecord};
use crate::varint::get_varint;
use crate::{TraceError, MAGIC, MAX_BLOCK_BYTES, TAG_CHUNK, TAG_END, TAG_STREAM_DEF, VERSION};

#[derive(Debug)]
struct StreamState {
    meta: StreamMeta,
    lookup: PoolLookup,
    events: u64,
    instrs: u64,
}

/// Streaming decoder for `.wpt` traces.
///
/// Yields `(stream id, record)` pairs in file order via
/// [`next_record`](TraceReader::next_record), holding at most one decoded
/// chunk in memory. Stream definitions are discovered as they are encountered;
/// because writers emit every definition before the stream's first chunk,
/// [`streams`](TraceReader::streams) is complete by the time the first
/// event of each stream is returned.
///
/// All structural problems — bad magic, checksum mismatches, impossible
/// counts, and files that end before their `End` block — surface as
/// [`TraceError`]s, never panics.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    input: R,
    streams: Vec<StreamState>,
    queue: VecDeque<(u16, TraceRecord)>,
    ended: bool,
    /// Byte offset of the next unread block (for error reporting).
    offset: u64,
    chunks: u64,
    /// Reusable decode buffers (chunk decode is shared with
    /// [`BatchReader`](crate::BatchReader); see `batch.rs`).
    scratch: DecodeScratch,
    batch: EventBatch,
}

impl TraceReader<std::io::BufReader<std::fs::File>> {
    /// Opens `path` and validates the file header.
    pub fn open(path: &Path) -> Result<Self, TraceError> {
        let file = std::fs::File::open(path)?;
        Self::new(std::io::BufReader::new(file))
    }
}

impl<R: Read> TraceReader<R> {
    /// Wraps `input`, reading and validating the file header.
    pub fn new(mut input: R) -> Result<Self, TraceError> {
        let mut magic = [0u8; 4];
        input.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let mut half = [0u8; 2];
        input.read_exact(&mut half)?;
        let version = u16::from_le_bytes(half);
        if version != VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        input.read_exact(&mut half)?; // flags (reserved)
        Ok(Self {
            input,
            streams: Vec::new(),
            queue: VecDeque::new(),
            ended: false,
            offset: 8,
            chunks: 0,
            scratch: DecodeScratch::default(),
            batch: EventBatch::new(),
        })
    }

    /// Stream definitions seen so far.
    pub fn streams(&self) -> impl Iterator<Item = &StreamMeta> {
        self.streams.iter().map(|s| &s.meta)
    }

    /// Metadata of stream `id`, if defined.
    pub fn stream(&self, id: u16) -> Option<&StreamMeta> {
        self.streams.get(usize::from(id)).map(|s| &s.meta)
    }

    /// Chunks decoded so far.
    pub fn chunks_read(&self) -> u64 {
        self.chunks
    }

    /// The next `(stream id, record)`, or `Ok(None)` at a clean end of
    /// trace (the `End` block was present and its totals matched).
    pub fn next_record(&mut self) -> Result<Option<(u16, TraceRecord)>, TraceError> {
        loop {
            if let Some(ev) = self.queue.pop_front() {
                return Ok(Some(ev));
            }
            if self.ended {
                return Ok(None);
            }
            self.read_block()?;
        }
    }

    fn read_block(&mut self) -> Result<(), TraceError> {
        crate::injected_read_fault()?;
        let block_offset = self.offset;
        let mut tag = [0u8; 1];
        if let Err(e) = self.input.read_exact(&mut tag) {
            // A file that just stops (no End block) is truncated, whatever
            // the boundary it stops on.
            return Err(TraceError::from(e));
        }
        let len = self.read_varint_stream()?;
        if len > MAX_BLOCK_BYTES {
            return Err(TraceError::Corrupt(format!("block of {len} bytes")));
        }
        let mut crc_bytes = [0u8; 4];
        self.input.read_exact(&mut crc_bytes)?;
        let expect_crc = u32::from_le_bytes(crc_bytes);
        let mut payload = vec![0u8; len as usize];
        self.input.read_exact(&mut payload)?;
        self.offset += 1 + varint_len(len) + 4 + len;
        // `reader-bitflip` flips a real payload bit in chunk N so the
        // stock CRC check below catches it, exactly as disk rot would.
        if !payload.is_empty() && tag[0] == TAG_CHUNK {
            if let Some(shot) = wp_fault::fire(wp_fault::FaultPoint::ReaderBitflip) {
                wp_obs::add(wp_obs::Counter::FaultsInjected, 1);
                let at = (shot.draw(block_offset) % payload.len() as u64) as usize;
                payload[at] ^= 1 << (shot.draw(at as u64) % 8);
            }
        }
        if crc32(&payload) != expect_crc {
            return Err(TraceError::Checksum {
                offset: block_offset,
            });
        }
        match tag[0] {
            TAG_STREAM_DEF => {
                let meta = StreamMeta::decode(&payload)?;
                if usize::from(meta.id) != self.streams.len() {
                    return Err(TraceError::Corrupt(format!(
                        "stream {} defined out of order (expected {})",
                        meta.id,
                        self.streams.len()
                    )));
                }
                let lookup = PoolLookup::new(&meta.pools);
                self.streams.push(StreamState {
                    meta,
                    lookup,
                    events: 0,
                    instrs: 0,
                });
                Ok(())
            }
            TAG_CHUNK => self.decode_chunk(&payload),
            TAG_END => self.check_end(&payload),
            t => Err(TraceError::Corrupt(format!("unknown block tag {t}"))),
        }
    }

    fn decode_chunk(&mut self, payload: &[u8]) -> Result<(), TraceError> {
        let (stream, body) = chunk_stream_id(payload)?;
        let first_chunk = {
            let state = self.streams.get(stream as usize).ok_or_else(|| {
                TraceError::Corrupt(format!("chunk for undefined stream {stream}"))
            })?;
            state.events == 0
        };
        self.batch.clear();
        let instrs = decode_chunk_body(
            payload,
            body,
            first_chunk,
            &mut self.scratch,
            &mut self.batch,
        )?;
        let state = &mut self.streams[stream as usize];
        for i in 0..self.batch.len() {
            let line = self.batch.lines[i];
            self.queue.push_back((
                stream as u16,
                TraceRecord {
                    gap_instrs: self.batch.gaps[i],
                    line,
                    is_write: self.batch.writes[i],
                    pool: state.lookup.pool_of(line),
                },
            ));
        }
        state.events += self.batch.len() as u64;
        state.instrs += instrs;
        self.chunks += 1;
        Ok(())
    }

    fn check_end(&mut self, payload: &[u8]) -> Result<(), TraceError> {
        let mut pos = 0;
        let n = get_varint(payload, &mut pos)?;
        if n as usize != self.streams.len() {
            return Err(TraceError::Corrupt(format!(
                "end block lists {n} streams, file defined {}",
                self.streams.len()
            )));
        }
        for s in &self.streams {
            let id = get_varint(payload, &mut pos)?;
            let events = get_varint(payload, &mut pos)?;
            let instrs = get_varint(payload, &mut pos)?;
            if id != u64::from(s.meta.id) || events != s.events || instrs != s.instrs {
                return Err(TraceError::Corrupt(format!(
                    "end block totals disagree for stream {}: {events} events / {instrs} \
                     instrs recorded, {} / {} decoded",
                    s.meta.id, s.events, s.instrs
                )));
            }
        }
        if pos != payload.len() {
            return Err(TraceError::Corrupt("trailing bytes in end block".into()));
        }
        // The End block must be the last thing in the file: appended
        // garbage (or a second concatenated trace) is corruption, not
        // something to silently ignore.
        let mut probe = [0u8; 1];
        loop {
            match self.input.read(&mut probe) {
                Ok(0) => break,
                Ok(_) => {
                    return Err(TraceError::Corrupt(
                        "trailing data after the end block".into(),
                    ))
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(TraceError::from(e)),
            }
        }
        self.ended = true;
        Ok(())
    }

    /// Reads a varint directly off the input stream (block lengths live
    /// outside any buffered payload).
    fn read_varint_stream(&mut self) -> Result<u64, TraceError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let mut byte = [0u8; 1];
            self.input.read_exact(&mut byte)?;
            let b = byte[0];
            if shift >= 64 || (shift == 63 && b & 0x7F > 1) {
                return Err(TraceError::Corrupt("varint overflows u64".into()));
            }
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }
}

fn varint_len(v: u64) -> u64 {
    (u64::from(64 - v.leading_zeros()).max(1)).div_ceil(7)
}

/// Per-stream summary produced by [`TraceInfo::scan`].
#[derive(Debug, Clone)]
pub struct StreamInfo {
    /// The stream's definition (name, pool table).
    pub meta: StreamMeta,
    /// Events in the stream.
    pub events: u64,
    /// Instructions covered (sum of gaps).
    pub instructions: u64,
    /// Write events.
    pub writes: u64,
    /// Smallest and largest line touched, if any events exist.
    pub line_span: Option<(u64, u64)>,
}

/// Whole-file summary: what `trace_tool info` prints.
#[derive(Debug, Clone)]
pub struct TraceInfo {
    /// File size in bytes.
    pub file_bytes: u64,
    /// Chunks in the file.
    pub chunks: u64,
    /// Per-stream summaries.
    pub streams: Vec<StreamInfo>,
}

impl TraceInfo {
    /// Scans (fully decodes) `path`, validating every checksum.
    pub fn scan(path: &Path) -> Result<Self, TraceError> {
        let file_bytes = std::fs::metadata(path)?.len();
        let mut reader = TraceReader::open(path)?;
        let mut streams: Vec<StreamInfo> = Vec::new();
        while let Some((sid, rec)) = reader.next_record()? {
            let sid = usize::from(sid);
            while streams.len() <= sid {
                let meta = reader
                    .stream(streams.len() as u16)
                    .expect("decoded events imply a definition")
                    .clone();
                streams.push(StreamInfo {
                    meta,
                    events: 0,
                    instructions: 0,
                    writes: 0,
                    line_span: None,
                });
            }
            let s = &mut streams[sid];
            s.events += 1;
            s.instructions += u64::from(rec.gap_instrs);
            s.writes += u64::from(rec.is_write);
            s.line_span = Some(match s.line_span {
                None => (rec.line.0, rec.line.0),
                Some((lo, hi)) => (lo.min(rec.line.0), hi.max(rec.line.0)),
            });
        }
        // Event-free streams still deserve a row.
        for meta in reader.streams().skip(streams.len()) {
            streams.push(StreamInfo {
                meta: meta.clone(),
                events: 0,
                instructions: 0,
                writes: 0,
                line_span: None,
            });
        }
        Ok(TraceInfo {
            file_bytes,
            chunks: reader.chunks_read(),
            streams,
        })
    }

    /// Total events across streams.
    pub fn total_events(&self) -> u64 {
        self.streams.iter().map(|s| s.events).sum()
    }

    /// Bytes a naive fixed-width encoding (`u64` address + `u32` gap per
    /// event) would take — the compression baseline.
    pub fn naive_bytes(&self) -> u64 {
        12 * self.total_events()
    }

    /// Compression ratio vs the naive fixed-width encoding.
    pub fn compression_ratio(&self) -> f64 {
        if self.file_bytes == 0 {
            return 0.0;
        }
        self.naive_bytes() as f64 / self.file_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::TraceWriter;
    use wp_mem::LineAddr;

    fn encode(events: &[(u32, u64, bool)], chunk: usize) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf).unwrap().with_chunk_events(chunk);
        let s = w.add_stream("t", &[]).unwrap();
        for &(gap, line, wr) in events {
            w.record(s, gap, LineAddr(line), wr).unwrap();
        }
        w.finish().unwrap();
        drop(w);
        buf
    }

    fn decode_all(buf: &[u8]) -> Result<Vec<(u32, u64, bool)>, TraceError> {
        let mut r = TraceReader::new(buf)?;
        let mut out = Vec::new();
        while let Some((_, rec)) = r.next_record()? {
            out.push((rec.gap_instrs, rec.line.0, rec.is_write));
        }
        Ok(out)
    }

    #[test]
    fn round_trips_across_chunk_sizes() {
        let events: Vec<(u32, u64, bool)> = (0..100u64)
            .map(|i| ((i % 7) as u32, 1000 + (i * 37) % 256, i % 3 == 0))
            .collect();
        for chunk in [1, 2, 3, 7, 64, 4096] {
            let buf = encode(&events, chunk);
            assert_eq!(decode_all(&buf).unwrap(), events, "chunk size {chunk}");
        }
    }

    #[test]
    fn empty_trace_round_trips() {
        let buf = encode(&[], 8);
        assert_eq!(decode_all(&buf).unwrap(), vec![]);
    }

    #[test]
    fn bad_magic_is_an_error() {
        assert!(matches!(
            TraceReader::new(&b"NOPE\x01\x00\x00\x00"[..]),
            Err(TraceError::BadMagic)
        ));
    }

    #[test]
    fn future_version_is_an_error() {
        let buf = [b'W', b'P', b'T', b'1', 9, 0, 0, 0];
        assert!(matches!(
            TraceReader::new(&buf[..]),
            Err(TraceError::UnsupportedVersion(9))
        ));
    }

    #[test]
    fn missing_end_block_is_truncation() {
        let events: Vec<(u32, u64, bool)> = (0..10).map(|i| (1, 100 + i, false)).collect();
        let buf = encode(&events, 4);
        // Chop the End block (its payload is small; cut the last byte).
        let cut = &buf[..buf.len() - 1];
        assert!(matches!(decode_all(cut), Err(TraceError::Truncated)));
    }

    #[test]
    fn trailing_garbage_after_end_is_an_error() {
        let events: Vec<(u32, u64, bool)> = (0..10).map(|i| (1, 100 + i, false)).collect();
        let mut buf = encode(&events, 4);
        let clean = buf.clone();
        buf.extend_from_slice(b"junk");
        assert!(matches!(decode_all(&buf), Err(TraceError::Corrupt(_))));
        // Two concatenated traces are likewise rejected, not half-read.
        let mut double = clean.clone();
        double.extend_from_slice(&clean);
        assert!(decode_all(&double).is_err());
    }

    #[test]
    fn flipped_payload_byte_is_a_checksum_error() {
        let events: Vec<(u32, u64, bool)> = (0..50).map(|i| (3, 7 * i, false)).collect();
        let mut buf = encode(&events, 16);
        let mid = buf.len() / 2;
        buf[mid] ^= 0x40;
        let got = decode_all(&buf);
        assert!(got.is_err(), "corruption must not decode cleanly");
    }

    #[test]
    fn sweep_addresses_cost_almost_nothing() {
        // 10k-event pure sweep with constant gap: both columns collapse
        // to zero-width residuals, so the file is ~header + chunk heads.
        let events: Vec<(u32, u64, bool)> = (0..10_000).map(|i| (40, 5000 + i, false)).collect();
        let buf = encode(&events, 4096);
        assert!(
            buf.len() < 200,
            "sweep should pack to ~0 bits/event, got {} bytes",
            buf.len()
        );
    }

    #[test]
    fn multi_stream_interleaves() {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf).unwrap().with_chunk_events(2);
        let a = w.add_stream("a", &[]).unwrap();
        let b = w.add_stream("b", &[]).unwrap();
        for i in 0..5u64 {
            w.record(a, 10, LineAddr(i), false).unwrap();
            w.record(b, 20, LineAddr(1000 + i), true).unwrap();
        }
        w.finish().unwrap();
        drop(w);
        let mut r = TraceReader::new(&buf[..]).unwrap();
        let mut per_stream = [0u64; 2];
        let mut n = 0;
        while let Some((sid, rec)) = r.next_record().unwrap() {
            per_stream[usize::from(sid)] += 1;
            if sid == a {
                assert!(!rec.is_write);
            } else {
                assert_eq!(rec.gap_instrs, 20);
            }
            n += 1;
        }
        assert_eq!(n, 10);
        assert_eq!(per_stream, [5, 5]);
        assert_eq!(r.streams().count(), 2);
    }
}
