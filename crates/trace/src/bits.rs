//! Fixed-width bit packing for chunk columns.
//!
//! Each column of a chunk (gaps, address deltas) is frame-of-reference
//! coded: a per-chunk minimum plus `width`-bit residuals packed LSB-first
//! into bytes. A constant column packs to zero bytes (`width == 0`).

use crate::TraceError;

/// Bits needed to represent `v` (0 for `v == 0`).
pub fn bits_for(v: u64) -> u8 {
    (64 - v.leading_zeros()) as u8
}

/// Packs `width`-bit values LSB-first into `out`.
///
/// # Panics
///
/// Debug-asserts every value fits in `width` bits; `width` must be ≤ 64.
pub fn pack(out: &mut Vec<u8>, values: &[u64], width: u8) {
    assert!(width <= 64);
    if width == 0 {
        return;
    }
    let mut acc = 0u128;
    let mut acc_bits = 0u32;
    for &v in values {
        debug_assert!(width == 64 || v < (1u64 << width), "value exceeds width");
        acc |= (v as u128) << acc_bits;
        acc_bits += u32::from(width);
        while acc_bits >= 8 {
            out.push((acc & 0xFF) as u8);
            acc >>= 8;
            acc_bits -= 8;
        }
    }
    if acc_bits > 0 {
        out.push((acc & 0xFF) as u8);
    }
}

/// Number of bytes `count` values of `width` bits occupy.
pub fn packed_len(count: usize, width: u8) -> usize {
    (count * usize::from(width)).div_ceil(8)
}

/// Unpacks `count` `width`-bit values from `buf` at `*pos` into a
/// caller-owned buffer (cleared first), advancing `*pos` past the column —
/// steady-state decode reuses one allocation per column instead of
/// allocating per chunk. Errors with [`TraceError::Truncated`] if the
/// buffer is too short.
pub fn unpack_into(
    buf: &[u8],
    pos: &mut usize,
    count: usize,
    width: u8,
    values: &mut Vec<u64>,
) -> Result<(), TraceError> {
    values.clear();
    if width == 0 {
        values.resize(count, 0);
        return Ok(());
    }
    if width > 64 {
        return Err(TraceError::Corrupt(format!("bit width {width} > 64")));
    }
    let need = packed_len(count, width);
    let Some(bytes) = buf.get(*pos..*pos + need) else {
        return Err(TraceError::Truncated);
    };
    *pos += need;
    values.reserve(count);
    let mut acc = 0u128;
    let mut acc_bits = 0u32;
    let mut next = bytes.iter();
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    for _ in 0..count {
        while acc_bits < u32::from(width) {
            acc |= u128::from(*next.next().expect("sized above")) << acc_bits;
            acc_bits += 8;
        }
        values.push((acc as u64) & mask);
        acc >>= width;
        acc_bits -= u32::from(width);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unpack(
        buf: &[u8],
        pos: &mut usize,
        count: usize,
        width: u8,
    ) -> Result<Vec<u64>, TraceError> {
        let mut values = Vec::new();
        unpack_into(buf, pos, count, width, &mut values)?;
        Ok(values)
    }

    #[test]
    fn bits_for_edges() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
        assert_eq!(bits_for(u64::MAX), 64);
    }

    #[test]
    fn pack_unpack_round_trips() {
        for width in [1u8, 3, 5, 8, 13, 17, 31, 33, 64] {
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            let values: Vec<u64> = (0..100u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask)
                .collect();
            let mut buf = Vec::new();
            pack(&mut buf, &values, width);
            assert_eq!(buf.len(), packed_len(values.len(), width));
            let mut pos = 0;
            let got = unpack(&buf, &mut pos, values.len(), width).unwrap();
            assert_eq!(got, values, "width {width}");
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn zero_width_is_free() {
        let mut buf = Vec::new();
        pack(&mut buf, &[0, 0, 0], 0);
        assert!(buf.is_empty());
        let mut pos = 0;
        assert_eq!(unpack(&buf, &mut pos, 3, 0).unwrap(), vec![0, 0, 0]);
    }

    #[test]
    fn short_buffer_is_an_error() {
        let mut buf = Vec::new();
        pack(&mut buf, &[1, 2, 3, 4], 9);
        buf.pop();
        let mut pos = 0;
        assert!(matches!(
            unpack(&buf, &mut pos, 4, 9),
            Err(TraceError::Truncated)
        ));
    }
}
