//! LEB128 varints and zigzag mapping — the byte-level primitives of the
//! `.wpt` container (block lengths, chunk headers, pool tables).

use crate::TraceError;

/// Appends `v` as an LEB128 varint (7 bits per byte, little-endian,
/// high bit = continuation). At most 10 bytes for a `u64`.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a varint from `buf` at `*pos`, advancing it.
///
/// Errors with [`TraceError::Corrupt`] on overlong encodings (more than
/// 10 bytes) and [`TraceError::Truncated`] if the buffer ends mid-varint.
pub fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, TraceError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = buf.get(*pos) else {
            return Err(TraceError::Truncated);
        };
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte & 0x7F > 1) {
            return Err(TraceError::Corrupt("varint overflows u64".into()));
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Maps a signed delta onto unsigned so small magnitudes of either sign
/// get small codes: `0, -1, 1, -2, 2, …` → `0, 1, 2, 3, 4, …`.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_truncation_is_an_error() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 1 << 40);
        buf.pop();
        let mut pos = 0;
        assert!(matches!(
            get_varint(&buf, &mut pos),
            Err(TraceError::Truncated)
        ));
    }

    #[test]
    fn overlong_varint_is_an_error() {
        let buf = [0x80u8; 11];
        let mut pos = 0;
        assert!(matches!(
            get_varint(&buf, &mut pos),
            Err(TraceError::Corrupt(_))
        ));
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 2, -2, 1 << 40, -(1 << 40), i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }
}
