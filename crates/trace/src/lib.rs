//! `wp-trace`: capture, compact storage, and replay of LLC access traces.
//!
//! The rest of the workspace generates memory access streams *live* from
//! the synthetic application models in `wp-workloads`. This crate adds the
//! missing third leg of the standard cache-study methodology: recorded
//! traces. Any simulator run can be captured to a `.wpt` file
//! (`wp_sim::SimConfig::capture_to`), shipped, and replayed bit-identically
//! through every LLC scheme, profiled by WhirlTool, or fed to the Mattson
//! machinery in `wp-mrc` — without the producing model present.
//!
//! # The `.wpt` format
//!
//! A `.wpt` file is a stream of checksummed blocks after a fixed header:
//!
//! ```text
//! file      := magic "WPT1" · version u16 LE · flags u16 LE · block*
//! block     := tag u8 · payload_len varint · crc32(payload) u32 LE · payload
//! tag 1     := StreamDef — stream id, name, pool table (pages as runs)
//! tag 2     := Chunk     — one stream's next batch of events
//! tag 3     := End       — per-stream event/instruction totals (must be last)
//! ```
//!
//! Chunk payloads are column-oriented and frame-of-reference coded:
//! instruction gaps and zigzagged line-address deltas each store a varint
//! minimum plus fixed-width bit-packed residuals, and the read/write flags
//! collapse to one byte when uniform. A pure streaming sweep costs ~0 bits
//! per address; the uniform-random pools of `delaunay` cost ≈23 bits per
//! event against 96 for a naive `u64` address + `u32` gap record (>4×).
//!
//! Readers and writers are streaming: memory use is one chunk per stream,
//! never the whole trace. Malformed input (truncation, bit flips, garbage)
//! surfaces as [`TraceError`] — never a panic.
//!
//! # Two read paths
//!
//! [`TraceReader`] is the streaming, record-at-a-time decoder every tool
//! uses. [`BatchReader`] decodes the same format chunk-at-a-time into flat
//! [`EventBatch`] columns straight out of an mmapped file image
//! ([`TraceData`]), optionally on a lookahead thread ([`PrefetchBatches`])
//! — the simulator's hot replay path. Both run the identical shared chunk
//! decoder, so they accept and reject exactly the same inputs.
//
// `unsafe` is denied rather than forbidden: the single exception is the
// FFI mmap in `mmap.rs`, which carries its own scoped `allow`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod bits;
mod crc;
mod meta;
mod mmap;
mod reader;
mod varint;
mod writer;

pub use batch::{BatchReader, EventBatch, PrefetchBatches};
pub use meta::{PoolMeta, StreamMeta, TraceRecord};
pub use mmap::TraceData;
pub use reader::{StreamInfo, TraceInfo, TraceReader};
pub use writer::{TraceWriter, DEFAULT_CHUNK_EVENTS};

/// File magic: the first four bytes of every `.wpt` file.
pub const MAGIC: [u8; 4] = *b"WPT1";

/// Current format version.
pub const VERSION: u16 = 1;

pub(crate) const TAG_STREAM_DEF: u8 = 1;
pub(crate) const TAG_CHUNK: u8 = 2;
pub(crate) const TAG_END: u8 = 3;

/// Largest accepted block payload (1 GiB) — a sanity bound so corrupt
/// length fields cannot drive huge allocations.
pub(crate) const MAX_BLOCK_BYTES: u64 = 1 << 30;

/// Largest accepted event count per chunk.
pub(crate) const MAX_CHUNK_EVENTS: u64 = 1 << 24;

/// Everything that can go wrong reading or writing a `.wpt` trace.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with the `.wpt` magic.
    BadMagic,
    /// The file's format version is newer than this reader.
    UnsupportedVersion(u16),
    /// The file ends before its `End` block (or mid-structure).
    Truncated,
    /// A block's payload does not match its stored CRC-32.
    Checksum {
        /// Byte offset of the failing block's tag.
        offset: u64,
    },
    /// Structurally invalid content (bad varint, impossible counts, …).
    Corrupt(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::BadMagic => write!(f, "not a .wpt trace (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported .wpt version {v} (this reader supports {VERSION})"
                )
            }
            TraceError::Truncated => write!(f, "trace file is truncated"),
            TraceError::Checksum { offset } => {
                write!(f, "checksum mismatch in block at byte {offset}")
            }
            TraceError::Corrupt(msg) => write!(f, "corrupt trace: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        // An unexpected EOF from `read_exact` is a truncated file, which
        // callers want to distinguish from real device errors.
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            TraceError::Truncated
        } else {
            TraceError::Io(e)
        }
    }
}

/// Fault-injection probe shared by both read paths, called once per
/// block: surfaces an armed `reader-io` or `reader-truncate` arm as the
/// typed error the equivalent disk fault would produce. One relaxed
/// atomic load per point when nothing is armed.
pub(crate) fn injected_read_fault() -> Result<(), TraceError> {
    if wp_fault::fire(wp_fault::FaultPoint::ReaderIo).is_some() {
        wp_obs::add(wp_obs::Counter::FaultsInjected, 1);
        return Err(TraceError::Io(std::io::Error::other(
            "injected trace I/O fault",
        )));
    }
    if wp_fault::fire(wp_fault::FaultPoint::ReaderTruncate).is_some() {
        wp_obs::add(wp_obs::Counter::FaultsInjected, 1);
        return Err(TraceError::Truncated);
    }
    Ok(())
}
