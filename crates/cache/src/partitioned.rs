//! A capacity-partitioned cache shared by several partitions (virtual
//! caches), with LRU within each partition's quota.

use std::collections::HashMap;

use crate::lru::{AccessOutcome, LruCache};

/// A cache whose line capacity is divided among *partitions*, each managed
/// LRU within an exact quota.
///
/// This models one LLC bank under Jigsaw: each VC owns a slice of the bank
/// (set by the reconfiguration runtime) and evictions never cross partition
/// boundaries. Quota changes evict LRU lines from shrunken partitions,
/// mirroring Jigsaw's incremental reconfiguration invalidations.
///
/// Partition ids are caller-assigned `u32`s (VC ids in the simulator).
#[derive(Debug, Default)]
pub struct PartitionedCache {
    parts: HashMap<u32, LruCache>,
    total_capacity: usize,
}

impl PartitionedCache {
    /// Creates an empty partitioned cache with a total line budget.
    /// The budget is advisory: [`set_quota`](Self::set_quota) enforces
    /// per-partition capacities, and `debug_assert`s the sum stays within it.
    pub fn new(total_capacity: usize) -> Self {
        Self {
            parts: HashMap::new(),
            total_capacity,
        }
    }

    /// Total line budget across partitions.
    pub fn total_capacity(&self) -> usize {
        self.total_capacity
    }

    /// Sum of quotas currently assigned.
    pub fn assigned_capacity(&self) -> usize {
        self.parts.values().map(|p| p.capacity()).sum()
    }

    /// Sets partition `id`'s quota to `lines`, creating it if absent.
    /// Returns lines evicted if the partition shrank.
    pub fn set_quota(&mut self, id: u32, lines: usize) -> Vec<u64> {
        let part = self.parts.entry(id).or_insert_with(|| LruCache::new(lines));
        let evicted = part.resize(lines);
        debug_assert!(
            self.assigned_capacity() <= self.total_capacity,
            "partition quotas exceed the bank budget"
        );
        evicted
    }

    /// Sets partition `id`'s quota without evicting: over-quota occupancy
    /// drains as the partition's own insertions arrive (soft shrinking).
    pub fn set_quota_lazy(&mut self, id: u32, lines: usize) {
        self.parts
            .entry(id)
            .or_insert_with(|| LruCache::new(lines))
            .resize_lazy(lines);
    }

    /// Current quota of partition `id` (0 if absent).
    pub fn quota(&self, id: u32) -> usize {
        self.parts.get(&id).map_or(0, |p| p.capacity())
    }

    /// Resident lines of partition `id`.
    pub fn occupancy(&self, id: u32) -> usize {
        self.parts.get(&id).map_or(0, |p| p.len())
    }

    /// Accesses `addr` within partition `id`. A partition with no quota (or
    /// never configured) always misses without inserting.
    pub fn access(&mut self, id: u32, addr: u64) -> AccessOutcome {
        match self.parts.get_mut(&id) {
            Some(p) => p.access(addr),
            None => AccessOutcome::Miss { evicted: None },
        }
    }

    /// Whether `addr` is resident in partition `id`.
    pub fn contains(&self, id: u32, addr: u64) -> bool {
        self.parts.get(&id).is_some_and(|p| p.contains(addr))
    }

    /// Invalidates `addr` in partition `id`.
    pub fn invalidate(&mut self, id: u32, addr: u64) -> bool {
        self.parts.get_mut(&id).is_some_and(|p| p.invalidate(addr))
    }

    /// Removes partition `id` entirely, returning its resident lines
    /// (the whole-VC invalidation used when a VC enters bypass mode).
    pub fn remove_partition(&mut self, id: u32) -> Vec<u64> {
        self.parts
            .remove(&id)
            .map(|mut p| p.drain())
            .unwrap_or_default()
    }

    /// Ids of all live partitions (unordered).
    pub fn partition_ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.parts.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_do_not_interfere() {
        let mut c = PartitionedCache::new(8);
        c.set_quota(1, 2);
        c.set_quota(2, 2);
        c.access(1, 100);
        c.access(1, 101);
        // Filling partition 2 never evicts partition 1's lines.
        for a in 0..10u64 {
            c.access(2, a);
        }
        assert!(c.contains(1, 100) && c.contains(1, 101));
        assert_eq!(c.occupancy(2), 2);
    }

    #[test]
    fn unconfigured_partition_misses_without_insert() {
        let mut c = PartitionedCache::new(8);
        assert_eq!(c.access(9, 1), AccessOutcome::Miss { evicted: None });
        assert_eq!(c.occupancy(9), 0);
    }

    #[test]
    fn shrink_evicts_excess() {
        let mut c = PartitionedCache::new(8);
        c.set_quota(1, 4);
        for a in 0..4u64 {
            c.access(1, a);
        }
        let evicted = c.set_quota(1, 1);
        assert_eq!(evicted.len(), 3);
        assert_eq!(c.occupancy(1), 1);
        assert!(c.contains(1, 3), "MRU line survives the shrink");
    }

    #[test]
    fn zero_quota_is_bypass_like() {
        let mut c = PartitionedCache::new(8);
        c.set_quota(1, 0);
        assert_eq!(c.access(1, 5), AccessOutcome::Miss { evicted: None });
        assert_eq!(c.occupancy(1), 0);
    }

    #[test]
    fn remove_partition_drains() {
        let mut c = PartitionedCache::new(8);
        c.set_quota(3, 4);
        c.access(3, 7);
        c.access(3, 8);
        let lines = c.remove_partition(3);
        assert_eq!(lines.len(), 2);
        assert_eq!(c.quota(3), 0);
    }

    #[test]
    fn assigned_capacity_tracks_quotas() {
        let mut c = PartitionedCache::new(10);
        c.set_quota(1, 4);
        c.set_quota(2, 6);
        assert_eq!(c.assigned_capacity(), 10);
        c.set_quota(2, 2);
        assert_eq!(c.assigned_capacity(), 6);
    }
}
