//! Set-associative cache with pluggable replacement.

use crate::lru::AccessOutcome;
use crate::policy::ReplacementPolicy;

/// Hit/miss/eviction counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Lines displaced by fills.
    pub evictions: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]` (zero when idle).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A set-associative cache over line addresses.
///
/// Models the private L1/L2 caches and the S-NUCA LLC banks (Table 3).
/// The line address is mapped to a set with a mixing hash so that strided
/// workloads do not alias pathologically (the paper's LLC uses hashed
/// zcache banks; see DESIGN.md for the associativity substitution).
#[derive(Debug)]
pub struct SetAssocCache<P: ReplacementPolicy> {
    /// Packed tag slab, `sets × ways`, validity tracked in [`Self::valid`].
    /// `Vec<Option<u64>>` would double this to 16 B per entry; at LLC scale
    /// the slab is tens of MB probed in hash-scattered order, so halving it
    /// halves the host cache lines touched per simulated access.
    tags: Vec<u64>,
    /// One validity bitmask per set (bit `w` = way `w` holds a line).
    valid: Vec<u64>,
    sets: usize,
    ways: usize,
    policy: P,
    stats: CacheStats,
    hash_sets: bool,
}

impl<P: ReplacementPolicy> SetAssocCache<P> {
    /// Creates a cache with `sets × ways` lines using `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: usize, ways: usize, mut policy: P) -> Self {
        assert!(sets > 0 && ways > 0, "cache must have sets and ways");
        assert!(ways <= 64, "validity bitmask holds at most 64 ways");
        policy.configure(sets, ways);
        // Reserve, advise huge pages, then touch: LLC-sized tag slabs on
        // 4 KB pages thrash the host TLB (see `advise_hugepages`).
        let mut tags = Vec::with_capacity(sets * ways);
        crate::advise_hugepages(&mut tags);
        tags.resize(sets * ways, 0);
        Self {
            tags,
            valid: vec![0; sets],
            sets,
            ways,
            policy,
            stats: CacheStats::default(),
            hash_sets: true,
        }
    }

    /// Builds a cache from a byte capacity (64 B lines).
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not an exact multiple of `ways` lines.
    pub fn with_capacity_bytes(bytes: u64, ways: usize, policy: P) -> Self {
        let lines = (bytes / 64) as usize;
        assert!(
            lines % ways == 0,
            "capacity {bytes} B is not a whole number of {ways}-way sets"
        );
        Self::new(lines / ways, ways, policy)
    }

    /// Disables set-index hashing (raw modulo), for tests that need
    /// predictable set mapping.
    pub fn set_raw_indexing(&mut self) {
        self.hash_sets = false;
    }

    fn set_of(&self, addr: u64) -> usize {
        let x = if self.hash_sets {
            let mut h = addr;
            h ^= h >> 33;
            h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            h ^= h >> 33;
            h
        } else {
            addr
        };
        (x % self.sets as u64) as usize
    }

    /// Accesses `addr`; on a miss the line is filled (possibly evicting).
    pub fn access(&mut self, addr: u64) -> AccessOutcome {
        let set = self.set_of(addr);
        let base = set * self.ways;
        let v = self.valid[set];
        // Branchless probe: compare every way (the compiler vectorizes the
        // fixed-bound loop over the packed slab), then mask out stale tags
        // in invalidated ways. Lowest valid match, as a linear scan would
        // find.
        let mut m = 0u64;
        for w in 0..self.ways {
            m |= u64::from(self.tags[base + w] == addr) << w;
        }
        if m & v != 0 {
            let w = (m & v).trailing_zeros() as usize;
            self.policy.on_hit(set, w);
            self.stats.hits += 1;
            return AccessOutcome::Hit;
        }
        self.stats.misses += 1;
        // Fill: lowest free way if any, else policy victim.
        let free = (!v).trailing_zeros() as usize;
        let (way, evicted) = if free < self.ways {
            (free, None)
        } else {
            let w = self.policy.victim(set);
            debug_assert!(w < self.ways);
            let old = self.tags[base + w];
            self.stats.evictions += 1;
            (w, Some(old))
        };
        self.tags[base + way] = addr;
        self.valid[set] = v | (1u64 << way);
        self.policy.on_insert(set, way);
        AccessOutcome::Miss { evicted }
    }

    /// Hints the host to pull `addr`'s set — tag slab and replacement
    /// state — toward L1 ahead of a future [`access`](Self::access). A
    /// pure performance hint: changes nothing observable. Batched scheme
    /// loops issue this for event `i + k` while serving event `i`; the
    /// arrays are tens of MB and hash-scattered, so the host-cache miss
    /// is otherwise on the critical path of every simulated access.
    pub fn prefetch(&self, addr: u64) {
        let set = self.set_of(addr);
        let base = set * self.ways;
        // Packed `u64` tags are 8 B each: a 16-way set spans two 64 B
        // lines. Hint every line of the span.
        let mut w = 0;
        while w < self.ways {
            crate::prefetch_read(&self.tags[base + w]);
            w += 8;
        }
        self.policy.prefetch(set);
    }

    /// Checks residency without touching replacement state.
    pub fn contains(&self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let base = set * self.ways;
        let v = self.valid[set];
        (0..self.ways).any(|w| self.tags[base + w] == addr && (v >> w) & 1 != 0)
    }

    /// Invalidates `addr` if resident; returns whether it was present.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let base = set * self.ways;
        let v = self.valid[set];
        for w in 0..self.ways {
            if self.tags[base + w] == addr && (v >> w) & 1 != 0 {
                self.valid[set] = v & !(1u64 << w);
                self.policy.on_invalidate(set, w);
                return true;
            }
        }
        false
    }

    /// Invalidates every line for which `pred` holds, returning the count
    /// (used for VC invalidation on bypass-mode switches).
    pub fn invalidate_matching(&mut self, mut pred: impl FnMut(u64) -> bool) -> usize {
        let mut count = 0;
        for set in 0..self.sets {
            for w in 0..self.ways {
                if (self.valid[set] >> w) & 1 != 0 && pred(self.tags[set * self.ways + w]) {
                    self.valid[set] &= !(1u64 << w);
                    self.policy.on_invalidate(set, w);
                    count += 1;
                }
            }
        }
        count
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.valid.iter().map(|v| v.count_ones() as usize).sum()
    }

    /// True if nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.valid.iter().all(|&v| v == 0)
    }

    /// Total line capacity.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (contents are preserved).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{DrripPolicy, LruPolicy};

    #[test]
    fn fills_free_ways_before_evicting() {
        let mut c = SetAssocCache::new(1, 4, LruPolicy::new());
        for a in 0..4u64 {
            assert_eq!(c.access(a), AccessOutcome::Miss { evicted: None });
        }
        assert_eq!(c.len(), 4);
        let out = c.access(4);
        assert!(matches!(out, AccessOutcome::Miss { evicted: Some(_) }));
    }

    #[test]
    fn lru_within_set() {
        let mut c = SetAssocCache::new(1, 2, LruPolicy::new());
        c.set_raw_indexing();
        c.access(0);
        c.access(1);
        c.access(0); // 1 is LRU
        assert_eq!(c.access(2), AccessOutcome::Miss { evicted: Some(1) });
    }

    #[test]
    fn sets_isolate_conflicts() {
        let mut c = SetAssocCache::new(2, 1, LruPolicy::new());
        c.set_raw_indexing();
        c.access(0); // set 0
        c.access(1); // set 1
        assert!(c.contains(0) && c.contains(1));
        // 2 maps to set 0, evicting 0 but not 1.
        assert_eq!(c.access(2), AccessOutcome::Miss { evicted: Some(0) });
        assert!(c.contains(1));
    }

    #[test]
    fn capacity_bytes_constructor() {
        let c = SetAssocCache::with_capacity_bytes(32 * 1024, 8, LruPolicy::new());
        assert_eq!(c.capacity(), 512); // 32 KB / 64 B
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut c = SetAssocCache::new(4, 2, LruPolicy::new());
        c.access(1);
        c.access(1);
        c.access(2);
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert!((s.miss_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn invalidate_matching_clears_predicate() {
        let mut c = SetAssocCache::new(8, 2, LruPolicy::new());
        for a in 0..10u64 {
            c.access(a);
        }
        let n = c.invalidate_matching(|a| a % 2 == 0);
        assert_eq!(n, 5);
        assert!(!c.contains(0) && c.contains(1));
    }

    #[test]
    fn drrip_works_under_thrash() {
        // Cyclic scan over 2x the cache capacity: LRU thrashes to zero hits;
        // DRRIP's set dueling flips followers to BRRIP, which retains a
        // subset of lines across the scan and recovers hits.
        let capacity = 128u64; // 32 sets x 4 ways
        let ws = 2 * capacity;
        let mut lru = SetAssocCache::new(32, 4, LruPolicy::new());
        let mut drrip = SetAssocCache::new(32, 4, DrripPolicy::new(2));
        for i in 0..100_000u64 {
            let a = i % ws;
            lru.access(a);
            drrip.access(a);
        }
        assert_eq!(lru.stats().hits, 0, "LRU must thrash on cyclic scan");
        let hit_rate = drrip.stats().hits as f64 / drrip.stats().accesses() as f64;
        assert!(
            hit_rate > 0.02,
            "DRRIP should be scan-resistant, got hit rate {hit_rate:.4}"
        );
    }
}
