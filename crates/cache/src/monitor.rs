//! Utility monitors (the GMON model).
//!
//! Jigsaw attaches a geometric utility monitor to every VC; Whirlpool adds
//! one per pool VC (24 KB of monitors in the 4-core system, Sec. 3.2). A
//! monitor observes the VC's LLC-bound access stream by sampling lines and
//! maintaining stack distances, and at each reconfiguration produces a
//! miss-rate curve, blended with history via EWMA so that transient phases
//! do not whipsaw the allocator.

use wp_mrc::{MissCurve, SampledStack};

/// Configuration for a [`UtilityMonitor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorConfig {
    /// Sample one in `2^sample_rate_log2` lines (GMONs sample to keep
    /// hardware small; 0 = exact).
    pub sample_rate_log2: u32,
    /// Lines per curve granule.
    pub granule_lines: u64,
    /// Number of curve points to emit (capacities `0..=points-1` granules).
    pub curve_points: usize,
    /// EWMA weight of the newest interval (1.0 = no history).
    pub ewma_alpha: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            sample_rate_log2: 3,
            granule_lines: wp_mrc::DEFAULT_GRANULE_LINES,
            curve_points: 201,
            ewma_alpha: 0.6,
        }
    }
}

/// A per-VC utility monitor producing interval miss-rate curves.
#[derive(Debug)]
pub struct UtilityMonitor {
    config: MonitorConfig,
    stack: SampledStack,
    accesses: u64,
    last_curve: Option<MissCurve>,
}

impl UtilityMonitor {
    /// Creates a monitor with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `curve_points` is zero or `ewma_alpha` is outside `(0, 1]`.
    pub fn new(config: MonitorConfig) -> Self {
        assert!(config.curve_points > 0, "need at least one curve point");
        assert!(
            config.ewma_alpha > 0.0 && config.ewma_alpha <= 1.0,
            "ewma_alpha must be in (0, 1]"
        );
        Self {
            config,
            stack: SampledStack::new(config.sample_rate_log2),
            accesses: 0,
            last_curve: None,
        }
    }

    /// Observes one LLC-bound access to `line`.
    pub fn record(&mut self, line: u64) {
        self.accesses += 1;
        self.stack.access(line);
    }

    /// Accesses observed since the last [`rollover`](Self::rollover).
    pub fn interval_accesses(&self) -> u64 {
        self.accesses
    }

    /// Ends the interval: converts the sampled histogram into a miss curve
    /// normalized by `interval_instructions`, EWMA-blends it with history,
    /// resets interval state, and returns the blended curve.
    ///
    /// Returns the previous curve (or a flat zero curve) when the interval
    /// saw no accesses — an idle VC keeps its last-known behaviour, like
    /// real GMONs between reconfigurations.
    pub fn rollover(&mut self, interval_instructions: u64) -> MissCurve {
        wp_obs::add(wp_obs::Counter::MonitorRollovers, 1);
        let instructions = interval_instructions.max(1);
        let hist = self.stack.take_histogram();
        self.accesses = 0;
        if hist.total() == 0 {
            let curve = self.last_curve.clone().unwrap_or_else(|| {
                MissCurve::flat(0.0, self.config.curve_points, self.config.granule_lines)
            });
            // Idle intervals decay history toward zero so dead pools
            // eventually release capacity.
            let decayed = curve.scaled(1.0 - self.config.ewma_alpha);
            self.last_curve = Some(decayed.clone());
            return decayed;
        }
        let fresh = MissCurve::from_histogram(&hist, instructions, self.config.granule_lines)
            .resized(self.config.curve_points)
            .monotonized();
        let blended = match &self.last_curve {
            Some(prev) => fresh.ewma(prev, self.config.ewma_alpha),
            None => fresh,
        };
        self.last_curve = Some(blended.clone());
        blended
    }

    /// The most recent blended curve, if any interval has completed.
    pub fn last_curve(&self) -> Option<&MissCurve> {
        self.last_curve.as_ref()
    }

    /// The monitor's configuration.
    pub fn config(&self) -> MonitorConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_config() -> MonitorConfig {
        MonitorConfig {
            sample_rate_log2: 0,
            granule_lines: 4,
            curve_points: 32,
            ewma_alpha: 1.0,
        }
    }

    #[test]
    fn cyclic_stream_yields_cliff_curve() {
        let mut m = UtilityMonitor::new(exact_config());
        // Cycle over 16 lines: all reuses at distance 16 (4 granules).
        for i in 0..1600u64 {
            m.record(i % 16);
        }
        let c = m.rollover(16_000);
        // Below 4 granules: ~100 MPKI (all miss); at >= 4 granules only the
        // 16 cold misses remain (~1 MPKI).
        assert!(
            c.mpki_at(3) > 50.0,
            "below WS should miss: {}",
            c.mpki_at(3)
        );
        assert!(c.mpki_at(4) < 2.0, "at WS should hit: {}", c.mpki_at(4));
    }

    #[test]
    fn idle_interval_decays_history() {
        let mut m = UtilityMonitor::new(MonitorConfig {
            ewma_alpha: 0.5,
            ..exact_config()
        });
        for i in 0..800u64 {
            m.record(i % 8);
        }
        let c1 = m.rollover(8_000);
        assert!(c1.at_zero() > 0.0);
        let c2 = m.rollover(8_000); // no accesses
        assert!(c2.at_zero() < c1.at_zero());
        assert!(c2.at_zero() > 0.0);
    }

    #[test]
    fn ewma_smooths_phase_change() {
        let mut m = UtilityMonitor::new(MonitorConfig {
            ewma_alpha: 0.5,
            ..exact_config()
        });
        for i in 0..1000u64 {
            m.record(i % 8);
        }
        let heavy = m.rollover(10_000);
        // Next interval: almost no traffic.
        m.record(1);
        let light = m.rollover(10_000);
        assert!(light.at_zero() < heavy.at_zero());
        assert!(light.at_zero() > 0.25 * heavy.at_zero() * 0.5 - 1e-9);
    }

    #[test]
    fn sampled_monitor_approximates_exact() {
        let mut exact = UtilityMonitor::new(exact_config());
        let mut sampled = UtilityMonitor::new(MonitorConfig {
            sample_rate_log2: 2,
            ..exact_config()
        });
        // Uniform random over 64 lines — enough mass for sampling.
        let mut x = 12345u64;
        for _ in 0..60_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let line = x % 64;
            exact.record(line);
            sampled.record(line);
        }
        let ce = exact.rollover(60_000);
        let cs = sampled.rollover(60_000);
        // APKI should agree within 2x (sampling noise bound, coarse check).
        assert!(cs.at_zero() > ce.at_zero() * 0.5 && cs.at_zero() < ce.at_zero() * 2.0);
    }

    #[test]
    fn interval_access_counter() {
        let mut m = UtilityMonitor::new(exact_config());
        m.record(1);
        m.record(2);
        assert_eq!(m.interval_accesses(), 2);
        m.rollover(1000);
        assert_eq!(m.interval_accesses(), 0);
    }
}
