//! Software prefetch hint, for batched scheme loops.
//!
//! Bank tag/replacement arrays are tens of megabytes and accessed in a
//! hash-scattered order, so simulating one LLC access is latency-bound on
//! the *host's* cache hierarchy. A scheme that can see a batch of upcoming
//! events hides that latency by hinting the tag lines of event `i + k`
//! while serving event `i` — see `LlcScheme::access_batch` in `wp-sim`.

/// Hints the host CPU to pull the cache line containing `r` toward L1.
///
/// Purely a performance hint: no memory is read or written, and the
/// function is a no-op on architectures without a prefetch intrinsic.
#[inline(always)]
pub fn prefetch_read<T: ?Sized>(r: &T) {
    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)]
    // SAFETY: `_mm_prefetch` only hints the address to the hardware
    // prefetcher; it performs no access and has no side effects on
    // program state, so any pointer value is sound to pass.
    unsafe {
        use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch::<_MM_HINT_T0>(r as *const T as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = r;
}

/// Advises the kernel to back `v`'s buffer with transparent huge pages.
///
/// Bank tag/stamp arrays total tens of MB probed in hash-scattered order;
/// on 4 KB pages that overwhelms the host TLB, and x86 drops software
/// prefetches that miss the DTLB — defeating [`prefetch_read`] exactly
/// where it matters. Call this right after reserving a large buffer,
/// *before* first touch, so the pages fault in huge.
///
/// Purely a performance hint: contents and semantics are unaffected, any
/// error is ignored, and the function is a no-op off Linux.
pub fn advise_hugepages<T>(v: &mut Vec<T>) {
    #[cfg(target_os = "linux")]
    #[allow(unsafe_code)]
    {
        // Whole 4 KB pages strictly inside the buffer (madvise wants an
        // aligned start; a non-4K-page host just returns EINVAL, ignored).
        const PAGE: usize = 4096;
        const MADV_HUGEPAGE: i32 = 14;
        extern "C" {
            fn madvise(addr: *mut core::ffi::c_void, len: usize, advice: i32) -> i32;
        }
        let start = v.as_mut_ptr() as usize;
        let end = start + v.capacity() * core::mem::size_of::<T>();
        let a_start = (start + PAGE - 1) & !(PAGE - 1);
        let a_end = end & !(PAGE - 1);
        if a_end > a_start {
            // SAFETY: the range lies within an allocation this Vec owns,
            // and MADV_HUGEPAGE only tunes page-size policy — it cannot
            // alter or free the memory.
            unsafe {
                madvise(
                    a_start as *mut core::ffi::c_void,
                    a_end - a_start,
                    MADV_HUGEPAGE,
                );
            }
        }
    }
    #[cfg(not(target_os = "linux"))]
    let _ = v;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advised_vec_works_normally() {
        let mut v: Vec<u64> = Vec::with_capacity(1 << 16);
        advise_hugepages(&mut v);
        v.resize(1 << 16, 7);
        assert!(v.iter().all(|&x| x == 7));
        // Tiny and empty buffers are fine too (nothing to advise).
        let mut small: Vec<u8> = Vec::with_capacity(8);
        advise_hugepages(&mut small);
        let mut empty: Vec<u8> = Vec::new();
        advise_hugepages(&mut empty);
        assert_eq!(empty.len(), 0);
    }

    #[test]
    fn prefetch_is_inert() {
        // Only observable property: it doesn't crash or alter data, at
        // any alignment.
        let data = [1u8; 256];
        for byte in &data {
            prefetch_read(byte);
        }
        let v = vec![42u64; 1024];
        prefetch_read(&v[1023]);
        assert_eq!(data[128], 1);
        assert_eq!(v[0], 42);
    }
}
