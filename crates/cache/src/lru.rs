//! An exact-capacity LRU line store.

use wp_mrc::FastMap;

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent and has been inserted; `evicted` names the line
    /// displaced to make room, if the cache was full.
    Miss {
        /// Line evicted to make room (LRU victim), if any.
        evicted: Option<u64>,
    },
}

/// A fully-associative LRU cache over 64-bit line addresses with an exact
/// line capacity.
///
/// This is the model for a pool's slice of LLC capacity: Jigsaw/Whirlpool
/// enforce per-VC quotas with fine-grain partitioning (Vantage), which
/// approximates exactly this — an LRU-managed region of a fixed number of
/// lines. It is implemented as a slab-backed doubly-linked list plus a
/// `HashMap` index, giving O(1) access, insert, and evict.
#[derive(Debug, Clone)]
pub struct LruCache {
    index: FastMap<u64, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize, // MRU
    tail: usize, // LRU
    capacity: usize,
    /// Bimodal insertion (opt-in): once full, only 1-in-16 misses insert,
    /// so a cache smaller than a streaming working set retains a stable
    /// subset (BIP-style scan resistance; the sweep-cliff linearization
    /// Talus would provide). The NUCA runtime instead avoids unrealizable
    /// mid-cliff allocations at the sizing level (hull-vertex snapping),
    /// so VC partitions keep plain LRU.
    bimodal: bool,
    rng: u64,
}

#[derive(Debug, Clone, Copy)]
struct Node {
    addr: u64,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

impl LruCache {
    /// Creates an empty cache holding at most `capacity` lines.
    /// A zero-capacity cache is legal (everything misses, nothing inserts) —
    /// that is how a bypassed VC's residual footprint is modelled.
    pub fn new(capacity: usize) -> Self {
        Self {
            index: FastMap::default(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            bimodal: false,
            rng: 0x9E37_79B9 ^ capacity as u64 | 1,
        }
    }

    /// Enables bimodal (Talus-style convexifying) insertion: once the cache
    /// is full, only one in 16 misses inserts. See the field docs.
    pub fn set_bimodal(&mut self, on: bool) {
        self.bimodal = on;
    }

    /// Current number of resident lines.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The line capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether `addr` is resident (does not touch recency).
    pub fn contains(&self, addr: u64) -> bool {
        self.index.contains_key(&addr)
    }

    /// Accesses `addr`: hit promotes to MRU; miss inserts at MRU, evicting
    /// the LRU line if at capacity. Zero-capacity caches always miss and
    /// never insert.
    pub fn access(&mut self, addr: u64) -> AccessOutcome {
        if let Some(&slot) = self.index.get(&addr) {
            self.unlink(slot);
            self.push_front(slot);
            return AccessOutcome::Hit;
        }
        if self.capacity == 0 {
            return AccessOutcome::Miss { evicted: None };
        }
        // Bimodal insertion at capacity (BIP-style scan resistance).
        if self.bimodal && self.index.len() >= self.capacity {
            self.rng ^= self.rng << 13;
            self.rng ^= self.rng >> 7;
            self.rng ^= self.rng << 17;
            if self.rng % 16 != 0 {
                return AccessOutcome::Miss { evicted: None };
            }
        }
        // Under lazy shrinking occupancy can exceed capacity; converge by
        // evicting until the insert fits.
        let mut evicted = None;
        while self.index.len() >= self.capacity {
            evicted = Some(self.evict_lru().expect("non-empty at capacity"));
        }
        let slot = self.alloc(addr);
        self.push_front(slot);
        self.index.insert(addr, slot);
        AccessOutcome::Miss { evicted }
    }

    /// Removes `addr` if resident; returns whether it was present.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        match self.index.remove(&addr) {
            Some(slot) => {
                self.unlink(slot);
                self.free.push(slot);
                true
            }
            None => false,
        }
    }

    /// Evicts the LRU line, returning its address.
    pub fn evict_lru(&mut self) -> Option<u64> {
        if self.tail == NIL {
            return None;
        }
        let slot = self.tail;
        let addr = self.nodes[slot].addr;
        self.unlink(slot);
        self.index.remove(&addr);
        self.free.push(slot);
        Some(addr)
    }

    /// Changes the capacity; if shrinking, evicts LRU lines and returns
    /// them (the invalidations Jigsaw performs on reconfiguration).
    pub fn resize(&mut self, new_capacity: usize) -> Vec<u64> {
        self.capacity = new_capacity;
        let mut evicted = Vec::new();
        while self.index.len() > self.capacity {
            evicted.push(self.evict_lru().expect("len > capacity"));
        }
        evicted
    }

    /// Changes the capacity without evicting: excess lines drain on demand
    /// as insertions arrive (Vantage-style soft shrinking, which is how
    /// fine-grain partitioning converges to new quotas without an
    /// invalidation storm).
    pub fn resize_lazy(&mut self, new_capacity: usize) {
        self.capacity = new_capacity;
    }

    /// Drains every resident line (full invalidation), returning them.
    pub fn drain(&mut self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.index.len());
        while let Some(a) = self.evict_lru() {
            out.push(a);
        }
        out
    }

    /// Iterates resident lines from MRU to LRU.
    pub fn iter(&self) -> LruIter<'_> {
        LruIter {
            cache: self,
            cursor: self.head,
        }
    }

    fn alloc(&mut self, addr: u64) -> usize {
        if let Some(slot) = self.free.pop() {
            self.nodes[slot] = Node {
                addr,
                prev: NIL,
                next: NIL,
            };
            slot
        } else {
            self.nodes.push(Node {
                addr,
                prev: NIL,
                next: NIL,
            });
            self.nodes.len() - 1
        }
    }

    fn push_front(&mut self, slot: usize) {
        self.nodes[slot].prev = NIL;
        self.nodes[slot].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn unlink(&mut self, slot: usize) {
        let Node { prev, next, .. } = self.nodes[slot];
        if prev != NIL {
            self.nodes[prev].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.nodes[slot].prev = NIL;
        self.nodes[slot].next = NIL;
    }
}

/// Iterator over resident lines, MRU first. Created by [`LruCache::iter`].
#[derive(Debug)]
pub struct LruIter<'a> {
    cache: &'a LruCache,
    cursor: usize,
}

impl Iterator for LruIter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.cursor == NIL {
            return None;
        }
        let node = self.cache.nodes[self.cursor];
        self.cursor = node.next;
        Some(node.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_hit_miss_evict() {
        let mut c = LruCache::new(2);
        assert_eq!(c.access(10), AccessOutcome::Miss { evicted: None });
        assert_eq!(c.access(20), AccessOutcome::Miss { evicted: None });
        assert_eq!(c.access(10), AccessOutcome::Hit);
        assert_eq!(c.access(30), AccessOutcome::Miss { evicted: Some(20) });
        assert_eq!(c.len(), 2);
        assert!(c.contains(10) && c.contains(30) && !c.contains(20));
    }

    #[test]
    fn zero_capacity_never_inserts() {
        let mut c = LruCache::new(0);
        assert_eq!(c.access(1), AccessOutcome::Miss { evicted: None });
        assert_eq!(c.access(1), AccessOutcome::Miss { evicted: None });
        assert!(c.is_empty());
    }

    #[test]
    fn invalidate_and_reaccess() {
        let mut c = LruCache::new(4);
        c.access(1);
        c.access(2);
        assert!(c.invalidate(1));
        assert!(!c.invalidate(1));
        assert_eq!(c.access(1), AccessOutcome::Miss { evicted: None });
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn shrink_evicts_lru_order() {
        let mut c = LruCache::new(4);
        for a in [1u64, 2, 3, 4] {
            c.access(a);
        }
        c.access(1); // 1 is now MRU; LRU order: 2, 3, 4
        let evicted = c.resize(2);
        assert_eq!(evicted, vec![2, 3]);
        assert!(c.contains(1) && c.contains(4));
    }

    #[test]
    fn grow_keeps_contents() {
        let mut c = LruCache::new(1);
        c.access(1);
        assert!(c.resize(8).is_empty());
        c.access(2);
        assert!(c.contains(1) && c.contains(2));
    }

    #[test]
    fn iter_is_mru_first() {
        let mut c = LruCache::new(3);
        for a in [5u64, 6, 7] {
            c.access(a);
        }
        c.access(6);
        let order: Vec<u64> = c.iter().collect();
        assert_eq!(order, vec![6, 7, 5]);
    }

    #[test]
    fn drain_empties() {
        let mut c = LruCache::new(3);
        for a in [1u64, 2, 3] {
            c.access(a);
        }
        let drained = c.drain();
        assert_eq!(drained.len(), 3);
        assert!(c.is_empty());
    }

    #[test]
    fn lru_inclusion_property() {
        // A bigger LRU cache hits on a superset of accesses (stack property).
        let trace: Vec<u64> = (0..500u64).map(|i| (i * 7919) % 37).collect();
        let mut small = LruCache::new(8);
        let mut big = LruCache::new(16);
        for &a in &trace {
            let hs = matches!(small.access(a), AccessOutcome::Hit);
            let hb = matches!(big.access(a), AccessOutcome::Hit);
            assert!(!hs || hb, "small hit but big missed — inclusion violated");
        }
    }

    #[test]
    fn bimodal_linearizes_the_sweep_cliff() {
        // Cyclic sweep of 2N lines over an N-line cache: plain LRU gets 0
        // hits; bimodal retains a stable subset and hits ~N/2N = 50%.
        let n = 4096;
        let mut plain = LruCache::new(n);
        let mut talus = LruCache::new(n);
        talus.set_bimodal(true);
        let mut hits_plain = 0;
        let mut hits_talus = 0;
        for rep in 0..40u64 {
            for a in 0..(2 * n as u64) {
                if matches!(plain.access(a), AccessOutcome::Hit) {
                    hits_plain += 1;
                }
                if matches!(talus.access(a), AccessOutcome::Hit) {
                    hits_talus += 1;
                }
            }
            let _ = rep;
        }
        assert_eq!(hits_plain, 0, "LRU must cliff on the sweep");
        let ratio = hits_talus as f64 / (40.0 * 2.0 * n as f64);
        assert!(
            (ratio - 0.5).abs() < 0.1,
            "bimodal should approach the hull hit rate, got {ratio:.3}"
        );
    }

    #[test]
    fn slot_reuse_after_heavy_churn() {
        let mut c = LruCache::new(4);
        for a in 0..10_000u64 {
            c.access(a);
        }
        assert_eq!(c.len(), 4);
        // Slab should not have grown unboundedly: free-list reuse.
        assert!(c.nodes.len() <= 16);
    }
}
