//! Cache structures for the Whirlpool reproduction.
//!
//! This crate provides the hardware-ish building blocks the simulator
//! composes into memory hierarchies:
//!
//! * [`LruCache`] — an exact-capacity LRU line store, the model for one
//!   pool's partition of an LLC bank (idealized Vantage partitioning).
//! * [`SetAssocCache`] — a set-associative cache with pluggable
//!   [`ReplacementPolicy`] (LRU, Random, SRRIP, DRRIP with set dueling),
//!   used for private L1/L2s and the S-NUCA / IdealSPD baselines.
//! * [`PartitionedCache`] — a capacity-partitioned cache with per-partition
//!   quotas and LRU within each quota; the model of a Jigsaw bank shared by
//!   several virtual caches.
//! * [`UtilityMonitor`] — the GMON model: a sampled stack-distance monitor
//!   that yields per-interval [`wp_mrc::MissCurve`]s with EWMA ageing.
//!
//! # Example
//!
//! ```
//! use wp_cache::{AccessOutcome, LruCache};
//!
//! let mut c = LruCache::new(2);
//! assert!(matches!(c.access(1), AccessOutcome::Miss { evicted: None }));
//! assert!(matches!(c.access(2), AccessOutcome::Miss { evicted: None }));
//! assert!(matches!(c.access(1), AccessOutcome::Hit));
//! // 3 evicts 2 (LRU), not 1.
//! assert!(matches!(c.access(3), AccessOutcome::Miss { evicted: Some(2) }));
//! ```
// `deny` rather than `forbid`: `prefetch` scopes a single allow around
// the `_mm_prefetch` intrinsic (a pure hint — no memory is dereferenced).
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod lru;
mod monitor;
mod partitioned;
mod policy;
mod prefetch;
mod setassoc;

pub use lru::{AccessOutcome, LruCache};
pub use monitor::{MonitorConfig, UtilityMonitor};
pub use partitioned::PartitionedCache;
pub use policy::{DrripPolicy, LruPolicy, RandomPolicy, ReplacementPolicy, SrripPolicy};
pub use prefetch::{advise_hugepages, prefetch_read};
pub use setassoc::{CacheStats, SetAssocCache};
