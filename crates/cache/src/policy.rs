//! Replacement policies for set-associative caches.
//!
//! The paper's S-NUCA baselines use LRU and DRRIP (Fig. 10/21); SRRIP and
//! Random are provided for ablations. Policies are per-*cache* objects that
//! keep whatever per-set state they need, addressed by `(set, way)`.

/// A replacement policy driven by the containing [`crate::SetAssocCache`].
///
/// The cache calls [`on_hit`](ReplacementPolicy::on_hit) when an access hits,
/// [`victim`](ReplacementPolicy::victim) to choose a way to evict when a set
/// is full, and [`on_insert`](ReplacementPolicy::on_insert) after a new line
/// lands in a way.
pub trait ReplacementPolicy: std::fmt::Debug {
    /// Called once so the policy can size its state.
    fn configure(&mut self, sets: usize, ways: usize);
    /// An access to `(set, way)` hit.
    fn on_hit(&mut self, set: usize, way: usize);
    /// A new line was inserted into `(set, way)`.
    fn on_insert(&mut self, set: usize, way: usize);
    /// Choose a victim way in `set` (all ways valid & full).
    fn victim(&mut self, set: usize) -> usize;
    /// `(set, way)` was invalidated (made free).
    fn on_invalidate(&mut self, _set: usize, _way: usize) {}
}

/// True LRU: per-set recency stamps.
#[derive(Debug, Default)]
pub struct LruPolicy {
    stamp: Vec<u64>,
    ways: usize,
    clock: u64,
}

impl LruPolicy {
    /// Creates an LRU policy (state sized on `configure`).
    pub fn new() -> Self {
        Self::default()
    }

    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    fn touch(&mut self, set: usize, way: usize) {
        self.clock += 1;
        let i = self.idx(set, way);
        self.stamp[i] = self.clock;
    }
}

impl ReplacementPolicy for LruPolicy {
    fn configure(&mut self, sets: usize, ways: usize) {
        self.ways = ways;
        self.stamp = vec![0; sets * ways];
        self.clock = 0;
    }

    fn on_hit(&mut self, set: usize, way: usize) {
        self.touch(set, way);
    }

    fn on_insert(&mut self, set: usize, way: usize) {
        self.touch(set, way);
    }

    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.ways;
        let mut best = 0;
        let mut best_stamp = u64::MAX;
        for w in 0..self.ways {
            let s = self.stamp[base + w];
            if s < best_stamp {
                best_stamp = s;
                best = w;
            }
        }
        best
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        let i = self.idx(set, way);
        self.stamp[i] = 0;
    }
}

/// Pseudo-random replacement (xorshift; deterministic for reproducibility).
#[derive(Debug)]
pub struct RandomPolicy {
    ways: usize,
    state: u64,
}

impl RandomPolicy {
    /// Creates a random policy with a fixed seed.
    pub fn new(seed: u64) -> Self {
        Self {
            ways: 1,
            state: seed | 1,
        }
    }
}

impl ReplacementPolicy for RandomPolicy {
    fn configure(&mut self, _sets: usize, ways: usize) {
        self.ways = ways;
    }

    fn on_hit(&mut self, _set: usize, _way: usize) {}

    fn on_insert(&mut self, _set: usize, _way: usize) {}

    fn victim(&mut self, _set: usize) -> usize {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        (self.state % self.ways as u64) as usize
    }
}

/// SRRIP-HP (Jaleel et al., ISCA'10) with M-bit re-reference prediction
/// values. Insertions use RRPV = 2^M - 2 ("long"); hits promote to 0.
#[derive(Debug)]
pub struct SrripPolicy {
    rrpv: Vec<u8>,
    ways: usize,
    max: u8,
}

impl SrripPolicy {
    /// Creates an SRRIP policy with `m_bits` of RRPV state (paper uses 2).
    pub fn new(m_bits: u8) -> Self {
        Self {
            rrpv: Vec::new(),
            ways: 1,
            max: (1u8 << m_bits) - 1,
        }
    }

    fn insert_with(&mut self, set: usize, way: usize, rrpv: u8) {
        self.rrpv[set * self.ways + way] = rrpv;
    }
}

impl ReplacementPolicy for SrripPolicy {
    fn configure(&mut self, sets: usize, ways: usize) {
        self.ways = ways;
        self.rrpv = vec![self.max; sets * ways];
    }

    fn on_hit(&mut self, set: usize, way: usize) {
        self.rrpv[set * self.ways + way] = 0;
    }

    fn on_insert(&mut self, set: usize, way: usize) {
        self.insert_with(set, way, self.max - 1);
    }

    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.ways;
        loop {
            for w in 0..self.ways {
                if self.rrpv[base + w] >= self.max {
                    return w;
                }
            }
            for w in 0..self.ways {
                self.rrpv[base + w] += 1;
            }
        }
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        self.rrpv[set * self.ways + way] = self.max;
    }
}

/// DRRIP: set-dueling between SRRIP and BRRIP (bimodal long/distant
/// insertion), with a PSEL counter steering follower sets — the paper's
/// high-performance replacement baseline.
#[derive(Debug)]
pub struct DrripPolicy {
    rrpv: Vec<u8>,
    ways: usize,
    sets: usize,
    max: u8,
    psel: i32,
    psel_max: i32,
    brrip_ctr: u32,
}

impl DrripPolicy {
    /// Creates a DRRIP policy with `m_bits` of RRPV state.
    pub fn new(m_bits: u8) -> Self {
        Self {
            rrpv: Vec::new(),
            ways: 1,
            sets: 1,
            max: (1u8 << m_bits) - 1,
            psel: 0,
            psel_max: 512,
            brrip_ctr: 0,
        }
    }

    /// Leader-set classification: 1-in-32 sets lead for SRRIP, another
    /// 1-in-32 for BRRIP (constituency-based, as in the paper).
    fn set_kind(&self, set: usize) -> SetKind {
        match set % 32 {
            0 => SetKind::SrripLeader,
            16 => SetKind::BrripLeader,
            _ => SetKind::Follower,
        }
    }

    fn use_brrip(&self, set: usize) -> bool {
        match self.set_kind(set) {
            SetKind::SrripLeader => false,
            SetKind::BrripLeader => true,
            // PSEL > 0 means SRRIP leaders missed more → follow BRRIP.
            SetKind::Follower => self.psel > 0,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SetKind {
    SrripLeader,
    BrripLeader,
    Follower,
}

impl ReplacementPolicy for DrripPolicy {
    fn configure(&mut self, sets: usize, ways: usize) {
        self.ways = ways;
        self.sets = sets;
        self.rrpv = vec![self.max; sets * ways];
        self.psel = 0;
    }

    fn on_hit(&mut self, set: usize, way: usize) {
        self.rrpv[set * self.ways + way] = 0;
    }

    fn on_insert(&mut self, set: usize, way: usize) {
        // A miss in a leader set moves PSEL against that leader's policy.
        match self.set_kind(set) {
            SetKind::SrripLeader => self.psel = (self.psel + 1).min(self.psel_max),
            SetKind::BrripLeader => self.psel = (self.psel - 1).max(-self.psel_max),
            SetKind::Follower => {}
        }
        let rrpv = if self.use_brrip(set) {
            // BRRIP: mostly distant (max), infrequently long (max-1).
            self.brrip_ctr = self.brrip_ctr.wrapping_add(1);
            if self.brrip_ctr % 32 == 0 {
                self.max - 1
            } else {
                self.max
            }
        } else {
            self.max - 1
        };
        self.rrpv[set * self.ways + way] = rrpv;
    }

    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.ways;
        loop {
            for w in 0..self.ways {
                if self.rrpv[base + w] >= self.max {
                    return w;
                }
            }
            for w in 0..self.ways {
                self.rrpv[base + w] += 1;
            }
        }
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        self.rrpv[set * self.ways + way] = self.max;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_victim_is_least_recent() {
        let mut p = LruPolicy::new();
        p.configure(1, 4);
        for w in 0..4 {
            p.on_insert(0, w);
        }
        p.on_hit(0, 0);
        assert_eq!(p.victim(0), 1);
    }

    #[test]
    fn random_victim_in_range() {
        let mut p = RandomPolicy::new(42);
        p.configure(4, 8);
        for _ in 0..100 {
            assert!(p.victim(0) < 8);
        }
    }

    #[test]
    fn srrip_scan_resistance() {
        // A reused line at RRPV 0 survives a one-pass scan that inserts at
        // max-1.
        let mut p = SrripPolicy::new(2);
        p.configure(1, 4);
        for w in 0..4 {
            p.on_insert(0, w);
        }
        p.on_hit(0, 2); // way 2 promoted to 0
        let v = p.victim(0);
        assert_ne!(v, 2, "reused way must not be the victim");
    }

    #[test]
    fn drrip_victim_terminates_and_valid() {
        let mut p = DrripPolicy::new(2);
        p.configure(64, 4);
        for s in 0..64 {
            for w in 0..4 {
                p.on_insert(s, w);
            }
            assert!(p.victim(s) < 4);
        }
    }

    #[test]
    fn drrip_psel_moves_on_leader_misses() {
        let mut p = DrripPolicy::new(2);
        p.configure(64, 4);
        let before = p.psel;
        for _ in 0..10 {
            p.on_insert(0, 0); // set 0: SRRIP leader
        }
        assert!(p.psel > before);
        for _ in 0..25 {
            p.on_insert(16, 0); // set 16: BRRIP leader
        }
        assert!(p.psel < before + 10);
    }
}
