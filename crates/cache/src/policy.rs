//! Replacement policies for set-associative caches.
//!
//! The paper's S-NUCA baselines use LRU and DRRIP (Fig. 10/21); SRRIP and
//! Random are provided for ablations. Policies are per-*cache* objects that
//! keep whatever per-set state they need, addressed by `(set, way)`.

/// A replacement policy driven by the containing [`crate::SetAssocCache`].
///
/// The cache calls [`on_hit`](ReplacementPolicy::on_hit) when an access hits,
/// [`victim`](ReplacementPolicy::victim) to choose a way to evict when a set
/// is full, and [`on_insert`](ReplacementPolicy::on_insert) after a new line
/// lands in a way.
pub trait ReplacementPolicy: std::fmt::Debug {
    /// Called once so the policy can size its state.
    fn configure(&mut self, sets: usize, ways: usize);
    /// An access to `(set, way)` hit.
    fn on_hit(&mut self, set: usize, way: usize);
    /// A new line was inserted into `(set, way)`.
    fn on_insert(&mut self, set: usize, way: usize);
    /// Choose a victim way in `set` (all ways valid & full).
    fn victim(&mut self, set: usize) -> usize;
    /// `(set, way)` was invalidated (made free).
    fn on_invalidate(&mut self, _set: usize, _way: usize) {}
    /// Hint the host to pull `set`'s replacement state toward L1 (see
    /// [`crate::prefetch_read`]). A pure performance hint — must not
    /// change any observable policy state. Default: nothing.
    fn prefetch(&self, _set: usize) {}
}

/// True LRU.
///
/// For `ways ≤ 16` (every cache in this repo) the full recency *order* of
/// a set is packed into one `u64` as a nibble list — way index at nibble 0
/// is MRU, at nibble `ways - 1` is LRU. That is 8 B of state per set
/// instead of `8 × ways` B of recency stamps, small enough that the whole
/// LRU state of an LLC-sized cache stays resident in the host's own cache;
/// with stamps, every simulated access paid a scattered host-memory touch.
/// Wider caches fall back to per-way stamps. Both representations encode
/// the same total order, so victim choice is identical.
#[derive(Debug, Default)]
pub struct LruPolicy {
    /// Nibble-packed recency order per set (`ways ≤ 16`), else empty.
    order: Vec<u64>,
    /// Per-way recency stamps (`ways > 16`), else empty.
    stamp: Vec<u64>,
    ways: usize,
    clock: u64,
}

impl LruPolicy {
    /// Creates an LRU policy (state sized on `configure`).
    pub fn new() -> Self {
        Self::default()
    }

    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    fn touch(&mut self, set: usize, way: usize) {
        if !self.order.is_empty() {
            // Move `way`'s nibble to the MRU end (nibble 0), shifting the
            // more-recent nibbles up one position.
            let order = self.order[set];
            let mut pos = 0;
            while (order >> (4 * pos)) & 0xF != way as u64 {
                pos += 1;
            }
            let below = order & ((1u64 << (4 * pos)) - 1);
            let above = if pos >= 15 {
                0
            } else {
                order & !((1u64 << (4 * pos + 4)) - 1)
            };
            self.order[set] = above | (below << 4) | way as u64;
        } else {
            self.clock += 1;
            let i = self.idx(set, way);
            self.stamp[i] = self.clock;
        }
    }
}

impl ReplacementPolicy for LruPolicy {
    fn configure(&mut self, sets: usize, ways: usize) {
        self.ways = ways;
        self.clock = 0;
        if ways <= 16 {
            // Initial order is any permutation: `victim` is only consulted
            // once a set is full, by which point every way has been
            // touched. Descending puts way 0 at the LRU end, matching the
            // stamp representation's all-zero tie-break.
            let mut init = 0u64;
            for w in 0..ways {
                init |= ((ways - 1 - w) as u64) << (4 * w);
            }
            self.order = vec![init; sets];
            self.stamp = Vec::new();
        } else {
            self.order = Vec::new();
            self.stamp = Vec::with_capacity(sets * ways);
            crate::advise_hugepages(&mut self.stamp);
            self.stamp.resize(sets * ways, 0);
        }
    }

    fn on_hit(&mut self, set: usize, way: usize) {
        self.touch(set, way);
    }

    fn on_insert(&mut self, set: usize, way: usize) {
        self.touch(set, way);
    }

    fn victim(&mut self, set: usize) -> usize {
        if !self.order.is_empty() {
            return ((self.order[set] >> (4 * (self.ways - 1))) & 0xF) as usize;
        }
        let base = set * self.ways;
        let mut best = 0;
        let mut best_stamp = u64::MAX;
        for w in 0..self.ways {
            let s = self.stamp[base + w];
            if s < best_stamp {
                best_stamp = s;
                best = w;
            }
        }
        best
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        // Only the relative order of *valid* ways can ever matter: the
        // cache fills free ways by index without consulting the policy,
        // and `victim` runs only on full sets, after every way has been
        // re-touched. The nibble order therefore needs no update here.
        if self.order.is_empty() {
            let i = self.idx(set, way);
            self.stamp[i] = 0;
        }
    }

    fn prefetch(&self, set: usize) {
        if !self.order.is_empty() {
            // Nibble orders are 8 B per set — the whole array stays
            // host-resident, so a hint would only occupy a fill buffer
            // that a tag-line prefetch could use.
        } else {
            // A set's stamps are 8 B × ways, contiguous: hint both ends.
            let base = set * self.ways;
            crate::prefetch_read(&self.stamp[base]);
            crate::prefetch_read(&self.stamp[base + self.ways - 1]);
        }
    }
}

/// Pseudo-random replacement (xorshift; deterministic for reproducibility).
#[derive(Debug)]
pub struct RandomPolicy {
    ways: usize,
    state: u64,
}

impl RandomPolicy {
    /// Creates a random policy with a fixed seed.
    pub fn new(seed: u64) -> Self {
        Self {
            ways: 1,
            state: seed | 1,
        }
    }
}

impl ReplacementPolicy for RandomPolicy {
    fn configure(&mut self, _sets: usize, ways: usize) {
        self.ways = ways;
    }

    fn on_hit(&mut self, _set: usize, _way: usize) {}

    fn on_insert(&mut self, _set: usize, _way: usize) {}

    fn victim(&mut self, _set: usize) -> usize {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        (self.state % self.ways as u64) as usize
    }
}

/// SRRIP-HP (Jaleel et al., ISCA'10) with M-bit re-reference prediction
/// values. Insertions use RRPV = 2^M - 2 ("long"); hits promote to 0.
#[derive(Debug)]
pub struct SrripPolicy {
    rrpv: Vec<u8>,
    ways: usize,
    max: u8,
}

impl SrripPolicy {
    /// Creates an SRRIP policy with `m_bits` of RRPV state (paper uses 2).
    pub fn new(m_bits: u8) -> Self {
        Self {
            rrpv: Vec::new(),
            ways: 1,
            max: (1u8 << m_bits) - 1,
        }
    }

    fn insert_with(&mut self, set: usize, way: usize, rrpv: u8) {
        self.rrpv[set * self.ways + way] = rrpv;
    }
}

impl ReplacementPolicy for SrripPolicy {
    fn configure(&mut self, sets: usize, ways: usize) {
        self.ways = ways;
        self.rrpv = Vec::with_capacity(sets * ways);
        crate::advise_hugepages(&mut self.rrpv);
        self.rrpv.resize(sets * ways, self.max);
    }

    fn on_hit(&mut self, set: usize, way: usize) {
        self.rrpv[set * self.ways + way] = 0;
    }

    fn on_insert(&mut self, set: usize, way: usize) {
        self.insert_with(set, way, self.max - 1);
    }

    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.ways;
        loop {
            for w in 0..self.ways {
                if self.rrpv[base + w] >= self.max {
                    return w;
                }
            }
            for w in 0..self.ways {
                self.rrpv[base + w] += 1;
            }
        }
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        self.rrpv[set * self.ways + way] = self.max;
    }

    fn prefetch(&self, set: usize) {
        // A set's RRPVs are 1 B × ways: one line covers them.
        crate::prefetch_read(&self.rrpv[set * self.ways]);
    }
}

/// DRRIP: set-dueling between SRRIP and BRRIP (bimodal long/distant
/// insertion), with a PSEL counter steering follower sets — the paper's
/// high-performance replacement baseline.
#[derive(Debug)]
pub struct DrripPolicy {
    rrpv: Vec<u8>,
    ways: usize,
    sets: usize,
    max: u8,
    psel: i32,
    psel_max: i32,
    brrip_ctr: u32,
}

impl DrripPolicy {
    /// Creates a DRRIP policy with `m_bits` of RRPV state.
    pub fn new(m_bits: u8) -> Self {
        Self {
            rrpv: Vec::new(),
            ways: 1,
            sets: 1,
            max: (1u8 << m_bits) - 1,
            psel: 0,
            psel_max: 512,
            brrip_ctr: 0,
        }
    }

    /// Leader-set classification: 1-in-32 sets lead for SRRIP, another
    /// 1-in-32 for BRRIP (constituency-based, as in the paper).
    fn set_kind(&self, set: usize) -> SetKind {
        match set % 32 {
            0 => SetKind::SrripLeader,
            16 => SetKind::BrripLeader,
            _ => SetKind::Follower,
        }
    }

    fn use_brrip(&self, set: usize) -> bool {
        match self.set_kind(set) {
            SetKind::SrripLeader => false,
            SetKind::BrripLeader => true,
            // PSEL > 0 means SRRIP leaders missed more → follow BRRIP.
            SetKind::Follower => self.psel > 0,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SetKind {
    SrripLeader,
    BrripLeader,
    Follower,
}

impl ReplacementPolicy for DrripPolicy {
    fn configure(&mut self, sets: usize, ways: usize) {
        self.ways = ways;
        self.sets = sets;
        self.rrpv = Vec::with_capacity(sets * ways);
        crate::advise_hugepages(&mut self.rrpv);
        self.rrpv.resize(sets * ways, self.max);
        self.psel = 0;
    }

    fn on_hit(&mut self, set: usize, way: usize) {
        self.rrpv[set * self.ways + way] = 0;
    }

    fn on_insert(&mut self, set: usize, way: usize) {
        // A miss in a leader set moves PSEL against that leader's policy.
        match self.set_kind(set) {
            SetKind::SrripLeader => self.psel = (self.psel + 1).min(self.psel_max),
            SetKind::BrripLeader => self.psel = (self.psel - 1).max(-self.psel_max),
            SetKind::Follower => {}
        }
        let rrpv = if self.use_brrip(set) {
            // BRRIP: mostly distant (max), infrequently long (max-1).
            self.brrip_ctr = self.brrip_ctr.wrapping_add(1);
            if self.brrip_ctr % 32 == 0 {
                self.max - 1
            } else {
                self.max
            }
        } else {
            self.max - 1
        };
        self.rrpv[set * self.ways + way] = rrpv;
    }

    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.ways;
        loop {
            for w in 0..self.ways {
                if self.rrpv[base + w] >= self.max {
                    return w;
                }
            }
            for w in 0..self.ways {
                self.rrpv[base + w] += 1;
            }
        }
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        self.rrpv[set * self.ways + way] = self.max;
    }

    fn prefetch(&self, set: usize) {
        crate::prefetch_read(&self.rrpv[set * self.ways]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_victim_is_least_recent() {
        let mut p = LruPolicy::new();
        p.configure(1, 4);
        for w in 0..4 {
            p.on_insert(0, w);
        }
        p.on_hit(0, 0);
        assert_eq!(p.victim(0), 1);
    }

    #[test]
    fn random_victim_in_range() {
        let mut p = RandomPolicy::new(42);
        p.configure(4, 8);
        for _ in 0..100 {
            assert!(p.victim(0) < 8);
        }
    }

    #[test]
    fn srrip_scan_resistance() {
        // A reused line at RRPV 0 survives a one-pass scan that inserts at
        // max-1.
        let mut p = SrripPolicy::new(2);
        p.configure(1, 4);
        for w in 0..4 {
            p.on_insert(0, w);
        }
        p.on_hit(0, 2); // way 2 promoted to 0
        let v = p.victim(0);
        assert_ne!(v, 2, "reused way must not be the victim");
    }

    #[test]
    fn drrip_victim_terminates_and_valid() {
        let mut p = DrripPolicy::new(2);
        p.configure(64, 4);
        for s in 0..64 {
            for w in 0..4 {
                p.on_insert(s, w);
            }
            assert!(p.victim(s) < 4);
        }
    }

    #[test]
    fn drrip_psel_moves_on_leader_misses() {
        let mut p = DrripPolicy::new(2);
        p.configure(64, 4);
        let before = p.psel;
        for _ in 0..10 {
            p.on_insert(0, 0); // set 0: SRRIP leader
        }
        assert!(p.psel > before);
        for _ in 0..25 {
            p.on_insert(16, 0); // set 16: BRRIP leader
        }
        assert!(p.psel < before + 10);
    }
}
