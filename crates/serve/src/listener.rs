//! The listener: unix-domain-socket accept loop and per-connection
//! request handling.
//!
//! The daemon binds one socket, accepts connections non-blockingly (so
//! the loop can poll the shutdown-signal flag and the `shutdown` verb
//! between accepts), and handles each connection on its own thread.
//! Requests on a connection run sequentially; concurrency comes from
//! opening several connections — which is exactly how the saturating
//! benchmark and the determinism tests drive it.
//!
//! Shutdown (SIGINT, SIGTERM, or the `shutdown` verb) is graceful in a
//! fixed order: stop accepting, cancel-and-drain the job queue (every queued
//! job still answers its client, as `cancelled` errors), join the
//! connection threads, flush the result log, and finally unlink the
//! socket file. A stale socket from a crashed daemon is detected at bind
//! time — `connect` distinguishes a live daemon from a dead one's
//! leftover — and reported as a one-line error, never a panic.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::dispatcher::{Dispatcher, JobEvent};
use crate::protocol::{ack_frame, done_frame, error_frame, line_frame, Request};
use crate::signal;
use crate::store::ServeStore;

/// How the daemon is wired: socket path, store directories, queue shape.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The unix socket to listen on.
    pub socket: PathBuf,
    /// The shared trace-cache directory (`WP_TRACE_CACHE` layout).
    pub cache_dir: PathBuf,
    /// Where the daemon's own state (result log) lives.
    pub state_dir: PathBuf,
    /// Worker threads draining the job queue.
    pub workers: usize,
    /// Maximum pending (not yet running) jobs before submits are
    /// rejected.
    pub queue_capacity: usize,
    /// Per-job wall-clock budget in milliseconds (`--timeout-ms`);
    /// `None` = unbounded. A job past its budget aborts at its next
    /// cooperative checkpoint with a typed "timed out" error frame.
    pub job_timeout_ms: Option<u64>,
}

impl ServeConfig {
    /// A config over `socket` with the defaults the CLI uses: the
    /// `WP_TRACE_CACHE` trace cache, `target/wp-serve` state, two
    /// workers, and a 64-deep queue.
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        Self {
            socket: socket.into(),
            cache_dir: wp_bench::sweep::default_cache_dir(),
            state_dir: PathBuf::from("target/wp-serve"),
            workers: 2,
            queue_capacity: 64,
            job_timeout_ms: None,
        }
    }
}

/// A bound, not-yet-serving daemon. Splitting bind from
/// [`run`](Self::run) lets callers (tests, the benchmark) know the
/// socket is accepting before the first client connects, and surfaces
/// bind errors synchronously.
#[derive(Debug)]
pub struct Server {
    listener: UnixListener,
    socket: PathBuf,
    store: Arc<ServeStore>,
    dispatcher: Arc<Dispatcher>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Opens the store, binds the socket, and starts the worker pool.
    /// Also enables the `wp_obs` registry — a resident daemon always
    /// runs with its telemetry on, that is half its point.
    ///
    /// # Errors
    ///
    /// One-line messages for store/bind failures. `AddrInUse` is
    /// disambiguated by probing the socket: a live daemon on the other
    /// end is reported as such; a dead one's leftover file gets a
    /// "stale socket" message naming the file to remove.
    pub fn bind(config: &ServeConfig) -> Result<Self, String> {
        wp_obs::enable();
        let store = Arc::new(ServeStore::open(&config.cache_dir, &config.state_dir)?);
        let listener = bind_socket(&config.socket)?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot set {} non-blocking: {e}", config.socket.display()))?;
        let dispatcher = Arc::new(Dispatcher::start_with_timeout(
            Arc::clone(&store),
            config.workers,
            config.queue_capacity,
            config.job_timeout_ms.map(Duration::from_millis),
        ));
        Ok(Self {
            listener,
            socket: config.socket.clone(),
            store,
            dispatcher: Arc::clone(&dispatcher),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// A flag that, once set, makes [`run`](Self::run) shut down at its
    /// next poll — how tests stop an in-process daemon without a signal.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// The resident store (tests assert on its occupancy).
    pub fn store(&self) -> &Arc<ServeStore> {
        &self.store
    }

    /// Serves until SIGINT, SIGTERM, or a `shutdown` request, then
    /// tears down gracefully. Consumes the server; the socket file is removed on
    /// the way out.
    ///
    /// # Errors
    ///
    /// Accept-loop I/O failures other than the expected
    /// `WouldBlock`/`Interrupted`.
    pub fn run(self) -> Result<(), String> {
        signal::install_shutdown_flags();
        eprintln!(
            "wp-serve: listening on {} ({} warm traces; log {})",
            self.socket.display(),
            self.store.warm_traces(),
            self.store.log_path().display(),
        );
        let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if self.shutdown.load(Ordering::SeqCst) || signal::shutdown_signal_received() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _addr)) => {
                    let dispatcher = Arc::clone(&self.dispatcher);
                    let shutdown = Arc::clone(&self.shutdown);
                    let handle = std::thread::Builder::new()
                        .name("wp-serve-conn".into())
                        .spawn(move || handle_connection(stream, &dispatcher, &shutdown))
                        .map_err(|e| format!("cannot spawn connection thread: {e}"))?;
                    connections.push(handle);
                    connections.retain(|h| !h.is_finished());
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::Interrupted =>
                {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(format!("accept on {} failed: {e}", self.socket.display())),
            }
        }
        eprintln!("wp-serve: shutting down (draining {:?})", self.dispatcher);
        self.shutdown.store(true, Ordering::SeqCst);
        self.dispatcher.begin_shutdown();
        self.dispatcher.join();
        for h in connections {
            let _ = h.join();
        }
        self.store.flush();
        if let Err(e) = std::fs::remove_file(&self.socket) {
            if e.kind() != std::io::ErrorKind::NotFound {
                eprintln!(
                    "wp-serve: could not remove socket {}: {e}",
                    self.socket.display()
                );
            }
        }
        eprintln!("wp-serve: stopped");
        Ok(())
    }
}

/// Binds `socket`, turning `AddrInUse` into the right one-line story.
fn bind_socket(socket: &Path) -> Result<UnixListener, String> {
    if let Some(parent) = socket.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create socket dir {}: {e}", parent.display()))?;
        }
    }
    match UnixListener::bind(socket) {
        Ok(l) => Ok(l),
        Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => match UnixStream::connect(socket) {
            Ok(_) => Err(format!(
                "cannot serve on {}: another daemon is already listening there \
                     (send it {{\"verb\":\"shutdown\"}} or pick another socket)",
                socket.display()
            )),
            Err(_) => Err(format!(
                "cannot serve on {}: stale socket file left by a crashed daemon \
                     (no one is listening); remove the file and retry",
                socket.display()
            )),
        },
        Err(e) => Err(format!("cannot bind {}: {e}", socket.display())),
    }
}

/// One connection: read request lines sequentially, answer each with
/// JSONL frames. Work verbs stream their job's events; synchronous
/// verbs answer inline.
fn handle_connection(stream: UnixStream, dispatcher: &Dispatcher, shutdown: &AtomicBool) {
    // A finite read timeout lets the loop notice daemon shutdown even
    // while a client holds the connection open idle.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = std::io::BufWriter::new(write_half);
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        // On timeout, `read_line` keeps any partial data in `line`;
        // retrying appends to it, so partial lines survive the poll.
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => return,
                Ok(_) => break,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut
                        || e.kind() == std::io::ErrorKind::Interrupted =>
                {
                    if shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                }
                Err(_) => return,
            }
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let reply_ok = match Request::from_line(trimmed) {
            Err(message) => send(&mut writer, &error_frame(0, false, &message)),
            Ok(req) if req.is_work() => match dispatcher.submit(req) {
                Err(message) => send(&mut writer, &error_frame(0, false, &message)),
                Ok((job, rx)) => {
                    let mut ok = send(&mut writer, &ack_frame(job));
                    while ok {
                        match rx.recv() {
                            Ok(JobEvent::Line(data)) => {
                                ok = send(&mut writer, &line_frame(job, &data));
                            }
                            Ok(JobEvent::Done { lines }) => {
                                ok = send(&mut writer, &done_frame(job, lines));
                                break;
                            }
                            Ok(JobEvent::Error { cancelled, message }) => {
                                ok = send(&mut writer, &error_frame(job, cancelled, &message));
                                break;
                            }
                            // Worker pool tore down mid-job (shutdown).
                            Err(_) => {
                                ok = send(
                                    &mut writer,
                                    &error_frame(job, true, "daemon shut down mid-job"),
                                );
                                break;
                            }
                        }
                    }
                    ok
                }
            },
            Ok(Request::Status) => send(&mut writer, &dispatcher.status_json()),
            Ok(Request::Metrics) => send(
                &mut writer,
                &format!(
                    "{{\"type\":\"metrics\",\"snapshot\":{}}}",
                    wp_obs::snapshot().to_json()
                ),
            ),
            Ok(Request::Cancel { job }) => {
                let found = dispatcher.cancel(job);
                send(
                    &mut writer,
                    &format!("{{\"type\":\"cancelled\",\"job\":{job},\"found\":{found}}}"),
                )
            }
            Ok(Request::Shutdown) => {
                let _ = send(&mut writer, "{\"type\":\"shutdown\"}");
                shutdown.store(true, Ordering::SeqCst);
                return;
            }
            // Work verbs are matched above; nothing else reaches here.
            Ok(_) => unreachable!("non-work verbs are handled explicitly"),
        };
        if !reply_ok {
            return;
        }
    }
}

/// Writes one frame plus newline and flushes; false means the client is
/// gone and the connection thread should wind down.
fn send(writer: &mut impl Write, frame: &str) -> bool {
    // `sock-drop` ships the front half of the frame and abandons the
    // connection — the torn write a daemon killed mid-send produces.
    // Returning false winds the connection thread down, which closes
    // the stream; the client sees a frame with no newline, then EOF.
    if wp_fault::fire(wp_fault::FaultPoint::SockDrop).is_some() {
        wp_obs::add(wp_obs::Counter::FaultsInjected, 1);
        let _ = writer.write_all(&frame.as_bytes()[..frame.len() / 2]);
        let _ = writer.flush();
        return false;
    }
    writeln!(writer, "{frame}")
        .and_then(|()| writer.flush())
        .is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_base(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("wp-listen-{}-{tag}", std::process::id()))
    }

    #[test]
    fn stale_and_live_sockets_report_distinct_errors() {
        let base = tmp_base("stale");
        std::fs::create_dir_all(&base).unwrap();
        let sock = base.join("wp.sock");
        // A crashed daemon's leftover: a bound-then-dropped listener
        // leaves the file with nobody accepting.
        drop(UnixListener::bind(&sock).unwrap());
        let err = bind_socket(&sock).unwrap_err();
        assert!(err.contains("stale socket"), "err: {err}");
        assert!(!err.contains("panic"));
        // With a live listener holding it, the message blames the
        // running daemon instead.
        std::fs::remove_file(&sock).unwrap();
        let live = UnixListener::bind(&sock).unwrap();
        let err = bind_socket(&sock).unwrap_err();
        assert!(err.contains("already listening"), "err: {err}");
        drop(live);
        let _ = std::fs::remove_dir_all(&base);
    }
}
