//! The shared operations layer: one implementation per subcommand,
//! returning stdout *lines* instead of printing.
//!
//! Offline `trace_tool` prints the returned lines; the daemon frames
//! each one as a `{"type":"line",...}` response and the client prints
//! them — so a client-mode invocation is byte-identical to the offline
//! one **by construction**, not by parallel maintenance of two code
//! paths. Progress and diagnostics stay on stderr (the daemon's, for
//! served requests), never in the returned payload.
//!
//! Every op takes an [`OpCtx`]: offline callers pass
//! [`OpCtx::offline`]; the dispatcher passes the daemon's
//! [`ServeStore`] (warm trace index + curve memo) and the job's
//! [`CancelToken`], which is threaded into [`Experiment`] runs and
//! sweep cell loops.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use whirlpool_repro::harness::{
    sixteen_core_config, CancelToken, Classification, Experiment, SchemeKind, MIX_WARMUP_INSTRS,
};
use wp_bench::store::TraceStore;
use wp_bench::sweep::SweepSpec;
use wp_mrc::{
    max_miss_ratio_error_with_slack, profile_streams, profile_streams_scanned, ProfileMode,
    ShardsConfig, StreamProfile,
};
use wp_paws::SchedPolicy;
use wp_trace::TraceInfo;

use crate::protocol::{ExpOp, Request};
use crate::store::ServeStore;

/// What an op runs against: nothing (offline), or the daemon's warm
/// store plus the job's cancel token (served).
#[derive(Debug, Clone, Default)]
pub struct OpCtx {
    /// The resident store, when running inside the daemon.
    pub store: Option<Arc<ServeStore>>,
    /// The job's cancel token, when running inside the daemon.
    pub cancel: Option<CancelToken>,
}

impl OpCtx {
    /// The offline context: no store, no cancellation.
    pub fn offline() -> Self {
        Self::default()
    }
}

/// Runs one queued request through the matching op.
///
/// # Errors
///
/// The op's one-line error message.
pub fn run_request(req: &Request, ctx: &OpCtx) -> Result<Vec<String>, String> {
    match req {
        Request::Experiment { op, argv } => match op {
            ExpOp::Record => record(argv, ctx),
            ExpOp::Replay => replay(argv, ctx),
            ExpOp::Obs => obs(argv, ctx),
        },
        Request::Profile { argv } => profile(argv, ctx),
        Request::Sweep { argv } => sweep(argv, ctx),
        Request::Scenario { argv } => scenario(argv, ctx),
        _ => Err(format!("'{}' is not a queued work verb", req.verb())),
    }
}

/// Minimal flag cursor: positionals plus `--flag [value]` pairs.
pub struct Args<'a> {
    rest: &'a [String],
    /// Positional arguments, in order.
    pub positional: Vec<&'a str>,
}

impl<'a> Args<'a> {
    /// Parses `rest` against the declared value-taking and boolean
    /// flags; anything else starting `--` is an error.
    ///
    /// # Errors
    ///
    /// Unknown flags and value flags missing their value.
    pub fn parse(
        rest: &'a [String],
        with_value: &[&str],
        boolean: &[&str],
    ) -> Result<Self, String> {
        let mut positional = Vec::new();
        let mut i = 0;
        while i < rest.len() {
            let arg = rest[i].as_str();
            if with_value.contains(&arg) {
                i += 2;
                if i > rest.len() {
                    return Err(format!("{arg} needs a value"));
                }
            } else if boolean.contains(&arg) {
                i += 1;
            } else if arg.starts_with("--") {
                return Err(format!("unknown flag '{arg}'"));
            } else {
                positional.push(arg);
                i += 1;
            }
        }
        Ok(Self { rest, positional })
    }

    /// The value following `--flag`, if present.
    pub fn value(&self, flag: &str) -> Option<&str> {
        self.rest
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.rest.get(i + 1))
            .map(String::as_str)
    }

    /// Whether `--flag` appears at all.
    pub fn flag(&self, flag: &str) -> bool {
        self.rest.iter().any(|a| a == flag)
    }

    /// Every value of a repeatable `--flag value` pair, in order.
    pub fn values(&self, flag: &str) -> Vec<&str> {
        self.rest
            .iter()
            .enumerate()
            .filter(|(_, a)| *a == flag)
            .filter_map(|(i, _)| self.rest.get(i + 1))
            .map(String::as_str)
            .collect()
    }

    /// `--flag N` as an integer (underscores allowed).
    ///
    /// # Errors
    ///
    /// Non-integer values.
    pub fn number(&self, flag: &str) -> Result<Option<u64>, String> {
        self.value(flag)
            .map(|v| {
                v.replace('_', "")
                    .parse::<u64>()
                    .map_err(|_| format!("{flag} expects an integer, got '{v}'"))
            })
            .transpose()
    }
}

fn parse_scheme(s: &str) -> Result<SchemeKind, String> {
    SchemeKind::resolve(s).map_err(|e| e.to_string())
}

fn parse_classification(args: &Args, kind: SchemeKind) -> Result<Classification, String> {
    match args.value("--classification") {
        None => Ok(kind.default_classification()),
        Some("none") => Ok(Classification::None),
        Some("manual") => Ok(Classification::Manual),
        Some("auto") => Ok(Classification::WhirlTool {
            pools: 3,
            train: true,
        }),
        Some(other) => Err(format!("unknown classification '{other}'")),
    }
}

/// Applies the shared `--warmup/--measure/--sixteen-core` overrides plus
/// the context's cancel token.
fn apply_common(mut exp: Experiment, args: &Args, ctx: &OpCtx) -> Result<Experiment, String> {
    if let Some(n) = args.number("--warmup")? {
        exp = exp.warmup(n);
    }
    if let Some(n) = args.number("--measure")? {
        exp = exp.measure(n);
    }
    if args.flag("--sixteen-core") {
        exp = exp.system(sixteen_core_config());
    }
    if let Some(tok) = &ctx.cancel {
        exp = exp.cancel_token(tok.clone());
    }
    Ok(exp)
}

/// `record <app>... --out <file>`: run and capture. Several apps record
/// a multi-program mix; `--parallel` records a task-parallel app.
///
/// # Errors
///
/// Unknown apps/schemes/flags, capture I/O, cancellation.
pub fn record(rest: &[String], ctx: &OpCtx) -> Result<Vec<String>, String> {
    let args = Args::parse(
        rest,
        &[
            "--out",
            "--scheme",
            "--classification",
            "--warmup",
            "--measure",
            "--policy",
        ],
        &["--sixteen-core", "--parallel"],
    )?;
    if args.positional.is_empty() {
        return Err("record takes at least one app name".into());
    }
    let out = PathBuf::from(args.value("--out").ok_or("record needs --out <file>")?);
    let kind = args
        .value("--scheme")
        .map_or(Ok(SchemeKind::Whirlpool), parse_scheme)?;
    if args.flag("--parallel") {
        return record_parallel(&args, kind, &out, ctx);
    }
    if args.value("--policy").is_some() {
        return Err("--policy applies to --parallel records only".into());
    }
    // Surface unknown names before the progress chatter starts.
    for app in &args.positional {
        whirlpool_repro::harness::resolve_app(app).map_err(|e| e.to_string())?;
    }
    if let [_, _, ..] = args.positional[..] {
        // Several apps: record a whole multi-program mix, one stream per
        // core. Mixes use the fixed shared warmup and the per-scheme
        // classification, so the single-app-only flags error.
        if args.value("--classification").is_some() {
            return Err("--classification applies to single-app records only".into());
        }
        if args.number("--warmup")?.is_some() {
            return Err(format!(
                "mix records use the fixed shared warmup ({MIX_WARMUP_INSTRS}); \
                 --warmup applies to single-app records only"
            ));
        }
        // --warmup was rejected above, so the shared overrides apply only
        // --measure and --sixteen-core here.
        let exp = apply_common(
            Experiment::mix(kind, &args.positional).capture_to(&out),
            &args,
            ctx,
        )?;
        let (warmup, measure) = exp.budgets();
        eprintln!(
            "recording mix {:?} under {} (warmup {warmup}, measure {measure})...",
            args.positional,
            kind.label(),
        );
        let summary = exp.run().map_err(|e| e.to_string())?;
        let lines = vec![summary.to_json()];
        validate_capture(&out)?;
        return Ok(lines);
    }
    let app = args.positional[0];
    let classification = parse_classification(&args, kind)?;
    let exp = apply_common(
        Experiment::single(kind, app)
            .classification(classification)
            .capture_to(&out),
        &args,
        ctx,
    )?;
    let (warmup, measure) = exp.budgets();
    eprintln!(
        "recording {app} under {} (warmup {warmup}, measure {measure})...",
        kind.label(),
    );
    let summary = exp.run().map_err(|e| e.to_string())?;
    let lines = vec![summary.to_json()];
    validate_capture(&out)?;
    Ok(lines)
}

/// `record --parallel <app>`: capture a Fig.-13 task-parallel app (one
/// stream per core of the 16-core chip).
fn record_parallel(
    args: &Args,
    kind: SchemeKind,
    out: &Path,
    ctx: &OpCtx,
) -> Result<Vec<String>, String> {
    let [app] = args.positional[..] else {
        return Err("record --parallel takes exactly one parallel app name".into());
    };
    if args.value("--classification").is_some()
        || args.number("--warmup")?.is_some()
        || args.number("--measure")?.is_some()
    {
        return Err("--parallel records run their task traces to exhaustion; \
             --classification/--warmup/--measure apply to single-app records only"
            .into());
    }
    if args.flag("--sixteen-core") {
        return Err(
            "--parallel records always run on the 16-core chip; drop --sixteen-core".into(),
        );
    }
    let policy = match args.value("--policy") {
        None | Some("paws") => SchedPolicy::Paws,
        Some("stealing" | "ws" | "work-stealing") => SchedPolicy::WorkStealing,
        Some(other) => {
            return Err(format!(
                "unknown policy '{other}' (expected 'paws' or 'stealing')"
            ))
        }
    };
    let specs = wp_workloads::parallel::parallel_apps(16, 42);
    let names: Vec<&str> = specs.iter().map(|s| s.name).collect();
    let Some(spec) = specs.iter().find(|s| s.name == app).cloned() else {
        return Err(format!(
            "unknown parallel app '{app}' (expected one of: {})",
            names.join(", ")
        ));
    };
    eprintln!(
        "recording parallel {app} under {} / {policy:?} (16 cores, to exhaustion)...",
        kind.label(),
    );
    let mut exp = Experiment::parallel(kind, spec, policy).capture_to(out);
    if let Some(tok) = &ctx.cancel {
        exp = exp.cancel_token(tok.clone());
    }
    let run = exp.run_full().map_err(|e| e.to_string())?;
    let lines = vec![run.summary.to_json()];
    validate_capture(out)?;
    Ok(lines)
}

/// Deliberate full re-read: validates every checksum of the file we just
/// wrote before anyone ships it, and reports on stderr.
fn validate_capture(out: &Path) -> Result<(), String> {
    let info = TraceInfo::scan(out).map_err(|e| e.to_string())?;
    eprintln!(
        "wrote and validated {} ({} events, {} bytes, {:.2}x vs naive encoding)",
        out.display(),
        info.total_events(),
        info.file_bytes,
        info.compression_ratio(),
    );
    Ok(())
}

/// `replay <file>`: drive a recording through one scheme (or the full
/// Fig. 10 set), one `RunSummary` JSON line per scheme.
///
/// # Errors
///
/// Unknown schemes, missing/corrupt traces, cancellation.
pub fn replay(rest: &[String], ctx: &OpCtx) -> Result<Vec<String>, String> {
    let args = Args::parse(
        rest,
        &["--scheme", "--warmup", "--measure", "--stream"],
        &["--all-schemes", "--no-pools", "--sixteen-core", "--mix"],
    )?;
    let [file] = args.positional[..] else {
        return Err("replay takes exactly one trace file".into());
    };
    let path = Path::new(file);
    let kinds: Vec<SchemeKind> = if args.flag("--all-schemes") {
        SchemeKind::FIG10.to_vec()
    } else {
        vec![args
            .value("--scheme")
            .map_or(Ok(SchemeKind::Whirlpool), parse_scheme)?]
    };
    let stream = args.number("--stream")?;
    if args.flag("--mix") && stream.is_some() {
        return Err("--mix re-attaches every stream; it conflicts with --stream".into());
    }
    // The recorded pools are restored by default (pools-agnostic schemes
    // ignore them); --no-pools strips them.
    let classification = if args.flag("--no-pools") {
        Classification::None
    } else {
        Classification::Manual
    };
    // One validating scan up front — every block's checksum is checked
    // here, so mid-replay corruption cannot panic out of the simulator —
    // which also enumerates the streams once (not once per scheme).
    let info = TraceInfo::scan(path).map_err(|e| e.to_string())?;
    let mix_streams: Option<Vec<u16>> = if args.flag("--mix") {
        if info.streams.is_empty() {
            return Err(format!("{file} defines no streams"));
        }
        Some(info.streams.iter().map(|s| s.meta.id).collect())
    } else {
        None
    };
    let mut lines = Vec::with_capacity(kinds.len());
    for kind in kinds {
        let mut exp = Experiment::replay(kind, path).classification(classification);
        if let Some(ids) = &mix_streams {
            exp = exp.streams(ids.clone());
        } else if let Some(k) = stream {
            let k = u16::try_from(k)
                .map_err(|_| format!("stream index {k} is out of range (max 65535)"))?;
            exp = exp.stream(k);
        }
        let exp = apply_common(exp, &args, ctx)?;
        let summary = exp.run().map_err(|e| e.to_string())?;
        lines.push(summary.to_json());
    }
    Ok(lines)
}

/// `profile <file>`: miss curves straight from a recording — exact
/// Mattson or SHARDS-sampled — with an optional exact-vs-sampled error
/// check that gates CI.
///
/// Served requests are memoized in the daemon's curve store, keyed by
/// the full argv plus the trace file's length/mtime: repeat profile
/// requests (the service's hottest verb) return the cached payload
/// without re-reading the trace. `--verify-exact` runs only on the
/// computing call; a memo hit replays its (verified) payload.
///
/// # Errors
///
/// Bad flags, missing/corrupt traces, a failed `--verify-exact` gate.
pub fn profile(rest: &[String], ctx: &OpCtx) -> Result<Vec<String>, String> {
    let memo_key = match (&ctx.store, rest.first()) {
        (Some(_), Some(_)) => {
            // Key on the positional (the trace file) when present; flag
            // order differences produce distinct keys, which only costs
            // a duplicate entry, never a wrong hit.
            let args = Args::parse(
                rest,
                &[
                    "--stream",
                    "--sample-rate",
                    "--s-max",
                    "--granule",
                    "--max-err",
                    "--capacity-slack",
                ],
                &["--all-streams", "--exact", "--json", "--verify-exact"],
            )?;
            args.positional
                .first()
                .map(|file| ServeStore::curve_key(rest, Path::new(file)))
        }
        _ => None,
    };
    if let (Some(store), Some(key)) = (&ctx.store, &memo_key) {
        if let Some(payload) = store.curve_lookup(key) {
            return Ok(payload.lines().map(str::to_string).collect());
        }
    }
    let lines = profile_uncached(rest)?;
    if let (Some(store), Some(key)) = (&ctx.store, memo_key) {
        store.curve_insert(key, lines.join("\n"));
    }
    Ok(lines)
}

fn profile_uncached(rest: &[String]) -> Result<Vec<String>, String> {
    let args = Args::parse(
        rest,
        &[
            "--stream",
            "--sample-rate",
            "--s-max",
            "--granule",
            "--max-err",
            "--capacity-slack",
        ],
        &["--all-streams", "--exact", "--json", "--verify-exact"],
    )?;
    let [file] = args.positional[..] else {
        return Err("profile takes exactly one trace file".into());
    };
    let path = Path::new(file);
    let parse_f64 = |flag: &str| -> Result<Option<f64>, String> {
        args.value(flag)
            .map(|v| {
                v.parse::<f64>()
                    .map_err(|_| format!("{flag} expects a number, got '{v}'"))
            })
            .transpose()
    };
    if args.flag("--exact")
        && (args.value("--sample-rate").is_some() || args.value("--s-max").is_some())
    {
        return Err("--exact conflicts with --sample-rate/--s-max".into());
    }
    let rate = parse_f64("--sample-rate")?;
    if let Some(r) = rate {
        if !(r > 0.0 && r <= 1.0) {
            return Err(format!("--sample-rate must be in (0, 1], got {r}"));
        }
    }
    let s_max = match args.number("--s-max")? {
        Some(0) => return Err("--s-max must be positive".into()),
        other => other.map(|n| n as usize),
    };
    // `--s-max N` alone means "adaptive from rate 1": sample everything
    // until the cap forces the rate down.
    let sample = match (rate, s_max) {
        (None, None) => None,
        (r, m) => Some(ShardsConfig {
            rate: r.unwrap_or(1.0),
            s_max: m,
        }),
    };
    let granule = args.number("--granule")?.unwrap_or(64).max(1);
    let max_err = parse_f64("--max-err")?.unwrap_or(0.02);
    // Traces with near-vertical working-set cliffs need a little
    // horizontal tolerance: sampling reproduces a cliff's height but can
    // place it a percent or two off in capacity.
    let slack = parse_f64("--capacity-slack")?.unwrap_or(0.0);
    if !(0.0..=1.0).contains(&slack) {
        return Err(format!("--capacity-slack must be in [0, 1], got {slack}"));
    }
    if (args.value("--max-err").is_some() || args.value("--capacity-slack").is_some())
        && !args.flag("--verify-exact")
    {
        return Err("--max-err/--capacity-slack only apply with --verify-exact".into());
    }
    if args.flag("--verify-exact") && sample.is_none() {
        return Err("--verify-exact needs a sampled profile (--sample-rate/--s-max)".into());
    }
    if args.flag("--all-streams") && args.value("--stream").is_some() {
        return Err("--all-streams profiles every stream; it conflicts with --stream".into());
    }
    // `--all-streams` needs a full scan to enumerate the streams; hold
    // the summary so the exact profiles below reuse it for pre-sizing
    // instead of scanning the file again.
    let mut info: Option<TraceInfo> = None;
    let streams: Vec<u16> = if args.flag("--all-streams") {
        let i = TraceInfo::scan(path).map_err(|e| e.to_string())?;
        if i.streams.is_empty() {
            return Err(format!("{file} defines no streams"));
        }
        let ids = i.streams.iter().map(|s| s.meta.id).collect();
        info = Some(i);
        ids
    } else {
        let k = args.number("--stream")?.unwrap_or(0);
        vec![u16::try_from(k).map_err(|_| format!("stream index {k} is out of range"))?]
    };
    let mode = match sample {
        Some(cfg) => ProfileMode::Sampled(cfg),
        None => ProfileMode::Exact,
    };
    let run = |mode: ProfileMode| match &info {
        Some(i) => profile_streams_scanned(path, i, &streams, mode),
        None => profile_streams(path, &streams, mode),
    };
    let profiles = run(mode).map_err(|e| e.to_string())?;
    // The verification pass re-profiles exactly; each stream's error is
    // the max absolute miss-ratio gap over the capacity sweep.
    let errors: Option<Vec<f64>> = if args.flag("--verify-exact") {
        let exact = run(ProfileMode::Exact).map_err(|e| e.to_string())?;
        Some(
            exact
                .iter()
                .zip(&profiles)
                .map(|(e, s)| {
                    max_miss_ratio_error_with_slack(&e.histogram, &s.histogram, granule, slack)
                })
                .collect(),
        )
    } else {
        None
    };
    let lines = if args.flag("--json") {
        vec![profile_json(
            file,
            sample,
            granule,
            &profiles,
            errors.as_deref(),
        )]
    } else {
        profile_text(file, sample, granule, &profiles, errors.as_deref())
    };
    if let Some(errs) = &errors {
        let worst = errs.iter().cloned().fold(0.0f64, f64::max);
        if worst > max_err {
            return Err(format!(
                "sampled miss ratio is off by {worst:.4} (> --max-err {max_err}) vs exact"
            ));
        }
        eprintln!("verified: max |miss-ratio error| {worst:.4} <= {max_err}");
    }
    Ok(lines)
}

fn profile_json(
    file: &str,
    sample: Option<ShardsConfig>,
    granule: u64,
    profiles: &[StreamProfile],
    errors: Option<&[f64]>,
) -> String {
    let mode = match sample {
        Some(cfg) => format!(
            "{{\"rate\":{},\"s_max\":{}}}",
            cfg.rate,
            cfg.s_max.map_or("null".into(), |n| n.to_string())
        ),
        None => "\"exact\"".to_string(),
    };
    let rows: Vec<String> = profiles
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let curve = p.curve(granule);
            let mpki: Vec<String> = curve.points().iter().map(f64::to_string).collect();
            let mut row = format!(
                "{{\"stream\":{},\"events\":{},\"instructions\":{},\"cold_misses\":{},\
                 \"max_distance\":{},\"final_rate\":{},\"peak_tracked\":{},\"mpki\":[{}]",
                p.stream,
                p.events,
                p.instructions,
                p.histogram.cold_misses(),
                p.histogram.max_distance(),
                p.sampled_rate.map_or("null".into(), |r| r.to_string()),
                p.peak_tracked.map_or("null".into(), |n| n.to_string()),
                mpki.join(","),
            );
            if let Some(errs) = errors {
                row.push_str(&format!(",\"max_miss_ratio_error\":{}", errs[i]));
            }
            row.push('}');
            row
        })
        .collect();
    format!(
        "{{\"file\":{},\"mode\":{mode},\"granule_lines\":{granule},\"streams\":[{}]}}",
        wp_sim::json_string(file),
        rows.join(","),
    )
}

fn profile_text(
    file: &str,
    sample: Option<ShardsConfig>,
    granule: u64,
    profiles: &[StreamProfile],
    errors: Option<&[f64]>,
) -> Vec<String> {
    let mut out = Vec::new();
    match sample {
        Some(cfg) => out.push(format!(
            "{file} (sampled, rate {}{})",
            cfg.rate,
            cfg.s_max
                .map(|n| format!(", s_max {n}"))
                .unwrap_or_default(),
        )),
        None => out.push(format!("{file} (exact)")),
    }
    for (i, p) in profiles.iter().enumerate() {
        out.push(format!(
            "  stream {}: {} events, {} instructions, {} cold, max distance {}",
            p.stream,
            p.events,
            p.instructions,
            p.histogram.cold_misses(),
            p.histogram.max_distance(),
        ));
        if let (Some(rate), Some(peak)) = (p.sampled_rate, p.peak_tracked) {
            out.push(format!(
                "    final rate {rate:.6}, peak tracked lines {peak}"
            ));
        }
        let total = p.histogram.total().max(1);
        let mut caps = vec![0u64];
        let mut c = granule;
        while c < p.histogram.max_distance() + granule {
            caps.push(c);
            c = c.saturating_mul(4);
        }
        let ratios: Vec<String> = caps
            .iter()
            .map(|&cap| {
                format!(
                    "{cap}:{:.3}",
                    p.histogram.misses_at(cap) as f64 / total as f64
                )
            })
            .collect();
        out.push(format!(
            "    miss ratio by capacity (lines): {}",
            ratios.join(" ")
        ));
        if let Some(errs) = errors {
            out.push(format!(
                "    max |miss-ratio error| vs exact: {:.4}",
                errs[i]
            ));
        }
    }
    out
}

/// `obs <app|file>`: one run with the observability probes attached,
/// JSONL timeline out (or, with `--obs-out`, written server-side with
/// the summary returned).
///
/// # Errors
///
/// Unknown apps/schemes, missing traces, cancellation, timeline I/O.
pub fn obs(rest: &[String], ctx: &OpCtx) -> Result<Vec<String>, String> {
    let args = Args::parse(
        rest,
        &[
            "--scheme",
            "--classification",
            "--warmup",
            "--measure",
            "--sample-every",
            "--obs-out",
        ],
        &["--sixteen-core"],
    )?;
    let [target] = args.positional[..] else {
        return Err("obs takes exactly one app name or trace file".into());
    };
    let kind = args
        .value("--scheme")
        .map_or(Ok(SchemeKind::Whirlpool), parse_scheme)?;
    let classification = parse_classification(&args, kind)?;
    let mut obs_cfg = match args.number("--sample-every")? {
        Some(n) => wp_obs::ObsConfig::every(n),
        None => wp_obs::ObsConfig::default(),
    };
    let out = args.value("--obs-out").map(PathBuf::from);
    if let Some(path) = &out {
        obs_cfg = obs_cfg.out(path);
    }
    let path = Path::new(target);
    let exp = if path.exists() {
        // Replays restore the recorded pools unless told otherwise, same
        // as `replay` without `--no-pools`.
        Experiment::replay(kind, path)
    } else {
        whirlpool_repro::harness::resolve_app(target).map_err(|e| e.to_string())?;
        Experiment::single(kind, target)
    };
    let exp = apply_common(
        exp.classification(classification).observe(obs_cfg),
        &args,
        ctx,
    )?;
    let run = exp.run_full().map_err(|e| e.to_string())?;
    let report = run.obs.as_ref().expect("observe() attaches a report");
    match out {
        Some(path) => {
            eprintln!(
                "wrote {} ({} pool samples, {} reconfigurations)",
                path.display(),
                report.timeline.len(),
                report.reconfigs.len(),
            );
            Ok(vec![run.summary.to_json()])
        }
        None => Ok(report
            .to_jsonl(&run.summary.scheme)
            .lines()
            .map(str::to_string)
            .collect()),
    }
}

/// `sweep --apps a,b[,...]`: a (scheme × app) grid on the sweep engine,
/// emitting the deterministic `cells_json` projection (one line) — the
/// same bytes at any `WP_JOBS`, cache temperature, exec mode, or
/// daemon/offline split. `--full-json` emits the self-describing
/// `to_json` form instead (its `env` block varies by construction).
///
/// # Errors
///
/// Unknown apps/schemes, bad flag combinations, capture I/O,
/// cancellation.
pub fn sweep(rest: &[String], ctx: &OpCtx) -> Result<Vec<String>, String> {
    let args = Args::parse(
        rest,
        &[
            "--apps",
            "--schemes",
            "--warmup",
            "--measure",
            "--jobs",
            "--cache-dir",
            "--exec",
        ],
        &["--full-json"],
    )?;
    if !args.positional.is_empty() {
        return Err(format!(
            "sweep takes no positional arguments (got '{}'); use --apps a,b,...",
            args.positional[0]
        ));
    }
    let apps: Vec<&str> = args
        .value("--apps")
        .ok_or("sweep needs --apps <a,b,...>")?
        .split(',')
        .filter(|s| !s.is_empty())
        .collect();
    if apps.is_empty() {
        return Err("--apps lists no apps".into());
    }
    let schemes: Vec<SchemeKind> = match args.value("--schemes") {
        None => SchemeKind::FIG10.to_vec(),
        Some(list) => list
            .split(',')
            .filter(|s| !s.is_empty())
            .map(parse_scheme)
            .collect::<Result<_, _>>()?,
    };
    if schemes.is_empty() {
        return Err("--schemes lists no schemes".into());
    }
    let mut spec = SweepSpec::grid(&schemes, &apps);
    match (args.number("--warmup")?, args.number("--measure")?) {
        (Some(w), Some(m)) => spec = spec.budgets(w, m),
        (None, None) => {}
        _ => return Err("sweep needs --warmup and --measure together (or neither)".into()),
    }
    if let Some(j) = args.number("--jobs")? {
        spec = spec.jobs(j.max(1) as usize);
    }
    if let Some(exec) = args.value("--exec") {
        spec = spec.exec_mode(
            exec.parse()
                .map_err(|_| format!("--exec expects 'per-event' or 'batched', got '{exec}'"))?,
        );
    }
    match (&ctx.store, args.value("--cache-dir")) {
        (Some(_), Some(_)) => {
            return Err("--cache-dir applies to offline sweeps; the daemon owns its cache".into())
        }
        (Some(store), None) => {
            let shared: Arc<dyn TraceStore> = Arc::clone(store) as Arc<dyn TraceStore>;
            spec = spec.store(shared);
        }
        (None, Some(dir)) => spec = spec.cache_dir(dir),
        (None, None) => {}
    }
    if let Some(tok) = &ctx.cancel {
        spec = spec.cancel_token(tok.clone());
    }
    let result = spec.run().map_err(|e| e.to_string())?;
    Ok(vec![if args.flag("--full-json") {
        result.to_json()
    } else {
        result.cells_json()
    }])
}

/// `scenario <file.wps> [--schemes a,b,...] [--jobs N] [--exec MODE]
/// [--timeline] [--check-timeline]` — run a multi-tenant scenario under
/// every requested scheme and emit one deterministic report line, plus
/// (with `--timeline`) the tenant-event JSONL.
///
/// The default scheme set is the multi-tenant headline comparison:
/// Whirlpool, Memshare, Jigsaw, and S-NUCA (LRU). Scenario runs never
/// touch the trace cache (alone baselines are live single-entry mixes),
/// so the op behaves identically offline and in the daemon.
///
/// # Errors
///
/// One line: unreadable/malformed `.wps` files, unknown schemes, or any
/// harness error from the underlying runs.
pub fn scenario(rest: &[String], ctx: &OpCtx) -> Result<Vec<String>, String> {
    let args = Args::parse(
        rest,
        &["--schemes", "--jobs", "--exec"],
        &["--timeline", "--check-timeline"],
    )?;
    let path = match args.positional.as_slice() {
        [p] => Path::new(p),
        [] => return Err("scenario needs a .wps file".into()),
        more => {
            return Err(format!(
                "scenario takes one .wps file (got '{}' too)",
                more[1]
            ))
        }
    };
    let sc = wp_tenant::Scenario::load(path).map_err(|e| e.to_string())?;
    let schemes: Vec<SchemeKind> = match args.value("--schemes") {
        None => vec![
            SchemeKind::Whirlpool,
            SchemeKind::Memshare,
            SchemeKind::Jigsaw,
            SchemeKind::SNucaLru,
        ],
        Some(list) => list
            .split(',')
            .filter(|s| !s.is_empty())
            .map(parse_scheme)
            .collect::<Result<_, _>>()?,
    };
    if schemes.is_empty() {
        return Err("--schemes lists no schemes".into());
    }
    let mut opts = wp_tenant::ScenarioOpts {
        cancel: ctx.cancel.clone(),
        ..Default::default()
    };
    if let Some(j) = args.number("--jobs")? {
        opts.jobs = Some(j.max(1) as usize);
    }
    if let Some(exec) = args.value("--exec") {
        opts.exec = Some(
            exec.parse()
                .map_err(|_| format!("--exec expects 'per-event' or 'batched', got '{exec}'"))?,
        );
    }
    let report = wp_tenant::run_scenario(&sc, &schemes, &opts).map_err(|e| e.to_string())?;
    let timeline = report.timeline_jsonl();
    if args.flag("--check-timeline") {
        wp_tenant::validate_timeline(&timeline)
            .map_err(|e| format!("timeline validation failed: {e}"))?;
    }
    let mut lines = vec![report.to_json()];
    if args.flag("--timeline") {
        lines.extend(timeline.lines().map(str::to_string));
    }
    Ok(lines)
}
