//! `wp-serve`: the resident experiment service.
//!
//! The batch pipeline pays process startup, registry rebuild, and cold
//! trace capture on every invocation. This crate makes the harness
//! resident instead: a unix-domain-socket daemon with a
//! listener/dispatcher/store split —
//!
//! * [`listener`] — binds the socket, accepts connections, and frames
//!   line-delimited JSON requests/responses; graceful shutdown on
//!   SIGINT, SIGTERM, or the `shutdown` verb (drain jobs, flush the
//!   log, unlink the socket).
//! * [`dispatcher`] — a bounded job queue over a small worker pool,
//!   with per-job ids, cooperative cancellation threaded through
//!   `Experiment` and the sweep cell loops, optional per-job wall-clock
//!   timeouts, and `catch_unwind` isolation so a panicking job becomes
//!   one typed error frame instead of a dead worker.
//! * [`store`] — the warm state worth being resident for: the
//!   `WP_TRACE_CACHE` index, memoized MRC curve payloads, and the
//!   append-only JSONL result log.
//!
//! The [`ops`] layer is the refactor's hinge: every `trace_tool`
//! subcommand body lives there once, returning stdout *lines*, so the
//! offline CLI, the daemon, and the thin [`client`] all run the same
//! code and produce byte-identical output. The protocol itself is in
//! [`protocol`]; [`signal`] holds the one audited `unsafe` block in the
//! workspace (a `signal(2)` registration storing to an atomic).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod dispatcher;
pub mod listener;
pub mod ops;
pub mod protocol;
pub mod signal;
pub mod store;

pub use client::{Client, Reply};
pub use dispatcher::{Dispatcher, JobEvent};
pub use listener::{ServeConfig, Server};
pub use ops::OpCtx;
pub use protocol::{ExpOp, Request};
pub use store::ServeStore;
