//! The thin client: send one request line, stream the reply frames.
//!
//! `trace_tool --connect <sock>` routes every subcommand through here.
//! For work verbs the client prints each `line` frame's `data` with
//! `println!` — the same macro the offline path uses on the same
//! [`ops`](crate::ops)-produced strings — so client-mode stdout is
//! byte-identical to the offline invocation. Errors travel on stderr and
//! the exit code, never stdout.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

use whirlpool_repro::bench_check::{parse, Json};

use crate::protocol::Request;

/// The canonical prefix for "the daemon went away mid-conversation"
/// errors: a broken pipe, a hangup, or a torn frame from a daemon that
/// is draining. `trace_tool` maps this class to exit code 1 (expected
/// operational condition) instead of 2 (usage/run error).
pub const SHUTDOWN_ERROR_PREFIX: &str = "daemon shutting down";

/// Whether `message` is the typed "daemon went away / is draining"
/// class — either this client's own [`SHUTDOWN_ERROR_PREFIX`] mapping
/// of a transport failure, or the daemon's own drain-time rejections.
pub fn is_shutdown_error(message: &str) -> bool {
    message.starts_with(SHUTDOWN_ERROR_PREFIX)
        || message.contains("daemon is shutting down")
        || message.contains("daemon shut down mid-job")
}

/// One connection to a running daemon.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

/// A work verb's outcome, as seen by the client.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// The job id the daemon assigned (0 for rejected requests).
    pub job: u64,
    /// The op's stdout lines, verbatim.
    pub lines: Vec<String>,
}

impl Client {
    /// Connects to the daemon's socket.
    ///
    /// # Errors
    ///
    /// A one-line message naming the socket (typically: no daemon
    /// running there).
    pub fn connect(socket: &Path) -> Result<Self, String> {
        let stream = UnixStream::connect(socket).map_err(|e| {
            format!(
                "cannot connect to {}: {e} (is `trace_tool serve` running?)",
                socket.display()
            )
        })?;
        let writer = stream
            .try_clone()
            .map_err(|e| format!("cannot clone socket stream: {e}"))?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// [`connect`](Self::connect) with up to `attempts` tries and
    /// capped, deterministically jittered exponential backoff between
    /// them (base 10 ms doubling to a 120 ms cap, ±25% jitter drawn
    /// from `seed` via splitmix64). Smooths over a daemon that is
    /// still binding, or the gap between one draining and its
    /// replacement listening.
    ///
    /// # Errors
    ///
    /// The last attempt's one-line connect error.
    pub fn connect_with_retry(socket: &Path, attempts: u32, seed: u64) -> Result<Self, String> {
        let attempts = attempts.max(1);
        let mut last_err = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                wp_obs::add(wp_obs::Counter::ClientConnectRetries, 1);
                let base = 10u64 << (attempt - 1).min(4); // 10,20,40,80,120-capped
                let base = base.min(120);
                // ±25% deterministic jitter so a fleet of clients
                // retrying the same dead socket does not stampede in
                // lockstep (and tests reproduce the exact schedule).
                let jitter = wp_fault::splitmix64(seed ^ u64::from(attempt)) % (base / 2 + 1);
                std::thread::sleep(Duration::from_millis(base * 3 / 4 + jitter));
            }
            match Self::connect(socket) {
                Ok(c) => return Ok(c),
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    /// Sends one raw line (newline appended here).
    ///
    /// # Errors
    ///
    /// Socket write failures.
    pub fn send_line(&mut self, line: &str) -> Result<(), String> {
        writeln!(self.writer, "{line}")
            .and_then(|()| self.writer.flush())
            .map_err(|e| match e.kind() {
                // A raw broken pipe here means the daemon closed its end
                // (drain or death) between connect and send: typed, not
                // a stack trace.
                std::io::ErrorKind::BrokenPipe | std::io::ErrorKind::ConnectionReset => format!(
                    "{SHUTDOWN_ERROR_PREFIX}: connection closed before the request was sent \
                     (retry once it is back)"
                ),
                _ => format!("daemon connection lost while sending: {e}"),
            })
    }

    /// Reads one reply frame (without its newline).
    ///
    /// # Errors
    ///
    /// Socket read failures or a daemon-side hangup.
    pub fn read_frame(&mut self) -> Result<String, String> {
        // `sock-slow` models a congested or descheduled client that
        // lets daemon-side frames pile up in the channel buffers.
        if let Some(shot) = wp_fault::fire(wp_fault::FaultPoint::SockSlow) {
            wp_obs::add(wp_obs::Counter::FaultsInjected, 1);
            std::thread::sleep(Duration::from_millis(shot.millis));
        }
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err(format!(
                "{SHUTDOWN_ERROR_PREFIX}: connection closed before the reply completed"
            )),
            // A final fragment with no newline is a frame torn by the
            // daemon dying (or dropping the socket) mid-write: typed,
            // never parsed as JSON.
            Ok(_) if !line.ends_with('\n') => Err(format!(
                "{SHUTDOWN_ERROR_PREFIX}: connection closed mid-frame"
            )),
            Ok(_) => Ok(line.trim_end_matches('\n').to_string()),
            Err(e) => match e.kind() {
                std::io::ErrorKind::BrokenPipe | std::io::ErrorKind::ConnectionReset => Err(
                    format!("{SHUTDOWN_ERROR_PREFIX}: connection reset mid-reply"),
                ),
                _ => Err(format!("daemon connection lost while reading: {e}")),
            },
        }
    }

    /// Runs one work verb to completion, collecting its stdout lines.
    ///
    /// # Errors
    ///
    /// The daemon's error frame message (including cancellations), or
    /// transport failures.
    pub fn run(&mut self, req: &Request) -> Result<Reply, String> {
        self.send_line(&req.to_line())?;
        self.collect()
    }

    /// Reads frames for one previously sent work request until its
    /// `done`/`error` frame.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn collect(&mut self) -> Result<Reply, String> {
        let mut job = 0u64;
        let mut lines = Vec::new();
        loop {
            let frame = self.read_frame()?;
            let doc = parse(&frame).map_err(|e| format!("malformed daemon frame: {e}"))?;
            match doc.get("type").and_then(Json::as_str) {
                Some("ack") => {
                    job = doc.get("job").and_then(Json::as_f64).unwrap_or(0.0) as u64;
                }
                Some("line") => {
                    let data = doc
                        .get("data")
                        .and_then(Json::as_str)
                        .ok_or("line frame lacks string data")?;
                    lines.push(data.to_string());
                }
                Some("done") => return Ok(Reply { job, lines }),
                Some("error") => {
                    let message = doc
                        .get("message")
                        .and_then(Json::as_str)
                        .unwrap_or("unspecified daemon error");
                    return Err(message.to_string());
                }
                other => {
                    return Err(format!(
                        "unexpected frame type {other:?} in a work reply: {frame}"
                    ))
                }
            }
        }
    }

    /// Runs one synchronous verb (`status`, `metrics`, `cancel`,
    /// `shutdown`), returning its single reply frame.
    ///
    /// # Errors
    ///
    /// Transport failures or a daemon-side error frame.
    pub fn call(&mut self, req: &Request) -> Result<String, String> {
        self.send_line(&req.to_line())?;
        let frame = self.read_frame()?;
        let doc = parse(&frame).map_err(|e| format!("malformed daemon frame: {e}"))?;
        if doc.get("type").and_then(Json::as_str) == Some("error") {
            let message = doc
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("unspecified daemon error");
            return Err(message.to_string());
        }
        Ok(frame)
    }
}
