//! The thin client: send one request line, stream the reply frames.
//!
//! `trace_tool --connect <sock>` routes every subcommand through here.
//! For work verbs the client prints each `line` frame's `data` with
//! `println!` — the same macro the offline path uses on the same
//! [`ops`](crate::ops)-produced strings — so client-mode stdout is
//! byte-identical to the offline invocation. Errors travel on stderr and
//! the exit code, never stdout.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

use whirlpool_repro::bench_check::{parse, Json};

use crate::protocol::Request;

/// One connection to a running daemon.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

/// A work verb's outcome, as seen by the client.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// The job id the daemon assigned (0 for rejected requests).
    pub job: u64,
    /// The op's stdout lines, verbatim.
    pub lines: Vec<String>,
}

impl Client {
    /// Connects to the daemon's socket.
    ///
    /// # Errors
    ///
    /// A one-line message naming the socket (typically: no daemon
    /// running there).
    pub fn connect(socket: &Path) -> Result<Self, String> {
        let stream = UnixStream::connect(socket).map_err(|e| {
            format!(
                "cannot connect to {}: {e} (is `trace_tool serve` running?)",
                socket.display()
            )
        })?;
        let writer = stream
            .try_clone()
            .map_err(|e| format!("cannot clone socket stream: {e}"))?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one raw line (newline appended here).
    ///
    /// # Errors
    ///
    /// Socket write failures.
    pub fn send_line(&mut self, line: &str) -> Result<(), String> {
        writeln!(self.writer, "{line}")
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("daemon connection lost while sending: {e}"))
    }

    /// Reads one reply frame (without its newline).
    ///
    /// # Errors
    ///
    /// Socket read failures or a daemon-side hangup.
    pub fn read_frame(&mut self) -> Result<String, String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err("daemon closed the connection".into()),
            Ok(_) => Ok(line.trim_end_matches('\n').to_string()),
            Err(e) => Err(format!("daemon connection lost while reading: {e}")),
        }
    }

    /// Runs one work verb to completion, collecting its stdout lines.
    ///
    /// # Errors
    ///
    /// The daemon's error frame message (including cancellations), or
    /// transport failures.
    pub fn run(&mut self, req: &Request) -> Result<Reply, String> {
        self.send_line(&req.to_line())?;
        self.collect()
    }

    /// Reads frames for one previously sent work request until its
    /// `done`/`error` frame.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn collect(&mut self) -> Result<Reply, String> {
        let mut job = 0u64;
        let mut lines = Vec::new();
        loop {
            let frame = self.read_frame()?;
            let doc = parse(&frame).map_err(|e| format!("malformed daemon frame: {e}"))?;
            match doc.get("type").and_then(Json::as_str) {
                Some("ack") => {
                    job = doc.get("job").and_then(Json::as_f64).unwrap_or(0.0) as u64;
                }
                Some("line") => {
                    let data = doc
                        .get("data")
                        .and_then(Json::as_str)
                        .ok_or("line frame lacks string data")?;
                    lines.push(data.to_string());
                }
                Some("done") => return Ok(Reply { job, lines }),
                Some("error") => {
                    let message = doc
                        .get("message")
                        .and_then(Json::as_str)
                        .unwrap_or("unspecified daemon error");
                    return Err(message.to_string());
                }
                other => {
                    return Err(format!(
                        "unexpected frame type {other:?} in a work reply: {frame}"
                    ))
                }
            }
        }
    }

    /// Runs one synchronous verb (`status`, `metrics`, `cancel`,
    /// `shutdown`), returning its single reply frame.
    ///
    /// # Errors
    ///
    /// Transport failures or a daemon-side error frame.
    pub fn call(&mut self, req: &Request) -> Result<String, String> {
        self.send_line(&req.to_line())?;
        let frame = self.read_frame()?;
        let doc = parse(&frame).map_err(|e| format!("malformed daemon frame: {e}"))?;
        if doc.get("type").and_then(Json::as_str) == Some("error") {
            let message = doc
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("unspecified daemon error");
            return Err(message.to_string());
        }
        Ok(frame)
    }
}
