//! The wire protocol: line-delimited JSON, both directions.
//!
//! Every request and every response is one JSON object per line. The
//! framing is deliberately boring — the repo's own
//! [`bench_check`](whirlpool_repro::bench_check) parser decodes it and
//! [`wp_sim::json_string`] encodes it, so the daemon adds no
//! dependencies and both ends share one lossless string escape.
//!
//! Requests (client → daemon):
//!
//! ```text
//! {"verb":"experiment","op":"record|replay|obs","argv":[...]}
//! {"verb":"profile","argv":[...]}
//! {"verb":"sweep","argv":[...]}
//! {"verb":"scenario","argv":[...]}
//! {"verb":"status"}
//! {"verb":"metrics"}
//! {"verb":"cancel","job":N}
//! {"verb":"shutdown"}
//! ```
//!
//! `argv` is exactly the offline subcommand's argument vector, which is
//! what makes the client a *thin* wrapper: the daemon hands it to the
//! same [`ops`](crate::ops) functions the offline paths run.
//!
//! Responses (daemon → client), streamed as JSONL:
//!
//! ```text
//! {"type":"ack","job":N}                 work accepted, id assigned
//! {"type":"line","job":N,"data":"..."}   one line of the op's stdout
//! {"type":"done","job":N,"lines":K}      op finished cleanly
//! {"type":"error","job":N,"cancelled":B,"message":"..."}
//! {"type":"status",...} / {"type":"metrics",...} / {"type":"cancelled",...}
//! {"type":"shutdown"}
//! ```
//!
//! `line` frames carry the op's output verbatim (minus the trailing
//! newline), so a client that prints each `data` with `println!` emits
//! bytes identical to the offline invocation — the determinism contract
//! `tests/serve_determinism.rs` locks down.

use whirlpool_repro::bench_check::{parse, Json};
use wp_sim::json_string;

/// Which [`Experiment`](whirlpool_repro::harness::Experiment)-backed
/// subcommand an `experiment` request runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpOp {
    /// `trace_tool record` — run and capture to a `.wpt`.
    Record,
    /// `trace_tool replay` — drive a recording through schemes.
    Replay,
    /// `trace_tool obs` — one observed run, JSONL timeline out.
    Obs,
}

impl ExpOp {
    fn label(self) -> &'static str {
        match self {
            ExpOp::Record => "record",
            ExpOp::Replay => "replay",
            ExpOp::Obs => "obs",
        }
    }
}

/// One decoded request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// A queued experiment run (`record`/`replay`/`obs` argv).
    Experiment {
        /// Which subcommand shape the argv follows.
        op: ExpOp,
        /// The offline subcommand's argument vector, verbatim.
        argv: Vec<String>,
    },
    /// A queued MRC profile (`trace_tool profile` argv).
    Profile {
        /// The offline subcommand's argument vector, verbatim.
        argv: Vec<String>,
    },
    /// A queued sweep (`trace_tool sweep` argv).
    Sweep {
        /// The offline subcommand's argument vector, verbatim.
        argv: Vec<String>,
    },
    /// A queued multi-tenant scenario (`trace_tool scenario` argv).
    Scenario {
        /// The offline subcommand's argument vector, verbatim.
        argv: Vec<String>,
    },
    /// Synchronous: queue depth, job table, store occupancy.
    Status,
    /// Synchronous: the `wp_obs` registry snapshot.
    Metrics,
    /// Synchronous: fire job `N`'s cancel token.
    Cancel {
        /// The id from the job's `ack` frame.
        job: u64,
    },
    /// Graceful daemon shutdown.
    Shutdown,
}

impl Request {
    /// The verb label used in job tables and the result log.
    pub fn verb(&self) -> String {
        match self {
            Request::Experiment { op, .. } => format!("experiment:{}", op.label()),
            Request::Profile { .. } => "profile".into(),
            Request::Sweep { .. } => "sweep".into(),
            Request::Scenario { .. } => "scenario".into(),
            Request::Status => "status".into(),
            Request::Metrics => "metrics".into(),
            Request::Cancel { .. } => "cancel".into(),
            Request::Shutdown => "shutdown".into(),
        }
    }

    /// Whether this request goes through the job queue (vs. answered
    /// inline by the connection thread).
    pub fn is_work(&self) -> bool {
        matches!(
            self,
            Request::Experiment { .. }
                | Request::Profile { .. }
                | Request::Sweep { .. }
                | Request::Scenario { .. }
        )
    }

    /// Serializes the request as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let argv_json = |argv: &[String]| {
            let items: Vec<String> = argv.iter().map(|a| json_string(a)).collect();
            format!("[{}]", items.join(","))
        };
        match self {
            Request::Experiment { op, argv } => format!(
                "{{\"verb\":\"experiment\",\"op\":\"{}\",\"argv\":{}}}",
                op.label(),
                argv_json(argv)
            ),
            Request::Profile { argv } => {
                format!("{{\"verb\":\"profile\",\"argv\":{}}}", argv_json(argv))
            }
            Request::Sweep { argv } => {
                format!("{{\"verb\":\"sweep\",\"argv\":{}}}", argv_json(argv))
            }
            Request::Scenario { argv } => {
                format!("{{\"verb\":\"scenario\",\"argv\":{}}}", argv_json(argv))
            }
            Request::Status => "{\"verb\":\"status\"}".into(),
            Request::Metrics => "{\"verb\":\"metrics\"}".into(),
            Request::Cancel { job } => format!("{{\"verb\":\"cancel\",\"job\":{job}}}"),
            Request::Shutdown => "{\"verb\":\"shutdown\"}".into(),
        }
    }

    /// Decodes one wire line.
    ///
    /// # Errors
    ///
    /// A one-line message for malformed JSON, an unknown verb, or
    /// missing/ill-typed fields — the daemon reports it in an `error`
    /// frame and keeps the connection open.
    pub fn from_line(line: &str) -> Result<Self, String> {
        let doc = parse(line).map_err(|e| format!("bad request JSON: {e}"))?;
        let verb = doc
            .get("verb")
            .and_then(Json::as_str)
            .ok_or("request lacks a string \"verb\"")?;
        let argv = || -> Result<Vec<String>, String> {
            match doc.get("argv") {
                None => Ok(Vec::new()),
                Some(Json::Arr(items)) => items
                    .iter()
                    .map(|v| {
                        v.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| "argv entries must be strings".to_string())
                    })
                    .collect(),
                Some(_) => Err("\"argv\" must be an array of strings".into()),
            }
        };
        match verb {
            "experiment" => {
                let op = match doc.get("op").and_then(Json::as_str) {
                    Some("record") => ExpOp::Record,
                    Some("replay") => ExpOp::Replay,
                    Some("obs") => ExpOp::Obs,
                    Some(other) => return Err(format!("unknown experiment op '{other}'")),
                    None => return Err("experiment requests need an \"op\"".into()),
                };
                Ok(Request::Experiment { op, argv: argv()? })
            }
            "profile" => Ok(Request::Profile { argv: argv()? }),
            "sweep" => Ok(Request::Sweep { argv: argv()? }),
            "scenario" => Ok(Request::Scenario { argv: argv()? }),
            "status" => Ok(Request::Status),
            "metrics" => Ok(Request::Metrics),
            "cancel" => {
                let job = doc
                    .get("job")
                    .and_then(Json::as_f64)
                    .ok_or("cancel requests need a numeric \"job\"")?;
                Ok(Request::Cancel { job: job as u64 })
            }
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!(
                "unknown verb '{other}' (expected experiment, profile, sweep, \
                 scenario, status, metrics, cancel, or shutdown)"
            )),
        }
    }
}

/// `{"type":"ack","job":N}`
pub fn ack_frame(job: u64) -> String {
    format!("{{\"type\":\"ack\",\"job\":{job}}}")
}

/// `{"type":"line","job":N,"data":"..."}`
pub fn line_frame(job: u64, data: &str) -> String {
    format!(
        "{{\"type\":\"line\",\"job\":{job},\"data\":{}}}",
        json_string(data)
    )
}

/// `{"type":"done","job":N,"lines":K}`
pub fn done_frame(job: u64, lines: usize) -> String {
    format!("{{\"type\":\"done\",\"job\":{job},\"lines\":{lines}}}")
}

/// `{"type":"error","job":N,"cancelled":B,"message":"..."}` — `job` 0
/// means the request never made it into the queue.
pub fn error_frame(job: u64, cancelled: bool, message: &str) -> String {
    format!(
        "{{\"type\":\"error\",\"job\":{job},\"cancelled\":{cancelled},\"message\":{}}}",
        json_string(message)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_the_wire_encoding() {
        let cases = [
            Request::Experiment {
                op: ExpOp::Replay,
                argv: vec!["/tmp/a.wpt".into(), "--scheme".into(), "LRU".into()],
            },
            Request::Profile {
                argv: vec!["/tmp/with \"quotes\"\n.wpt".into()],
            },
            Request::Sweep { argv: vec![] },
            Request::Scenario {
                argv: vec![
                    "scenarios/smoke.wps".into(),
                    "--schemes".into(),
                    "Memshare".into(),
                ],
            },
            Request::Status,
            Request::Metrics,
            Request::Cancel { job: 42 },
            Request::Shutdown,
        ];
        for req in cases {
            let line = req.to_line();
            assert_eq!(Request::from_line(&line).unwrap(), req, "line: {line}");
        }
    }

    #[test]
    fn malformed_requests_report_one_line_errors() {
        assert!(Request::from_line("not json").is_err());
        assert!(Request::from_line("{\"verb\":\"fly\"}")
            .unwrap_err()
            .contains("unknown verb"));
        assert!(Request::from_line("{\"verb\":\"cancel\"}")
            .unwrap_err()
            .contains("numeric"));
        assert!(Request::from_line("{\"verb\":\"experiment\",\"argv\":[]}")
            .unwrap_err()
            .contains("op"));
    }

    #[test]
    fn line_frames_escape_losslessly() {
        let data = "tab\there, \"quote\", backslash \\";
        let frame = line_frame(7, data);
        let doc = parse(&frame).unwrap();
        assert_eq!(doc.get("data").and_then(Json::as_str), Some(data));
        assert_eq!(doc.get("job").and_then(Json::as_f64), Some(7.0));
    }
}
