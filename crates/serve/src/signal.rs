//! SIGINT → shutdown flag, with no libc crate to lean on.
//!
//! The daemon's accept loop polls [`sigint_received`] between
//! non-blocking accepts, so Ctrl-C lands as a graceful shutdown (drain
//! jobs, flush the result log, unlink the socket) instead of the
//! process dying mid-write. This is the one module in the workspace
//! allowed to use `unsafe`: std has no signal API, and the whole
//! surface is a single `signal(2)` registration whose handler stores to
//! an atomic — the only thing that is async-signal-safe anyway.
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};

static SIGINT: AtomicBool = AtomicBool::new(false);

/// POSIX `SIGINT` — identical on every platform this repo targets.
const SIGINT_NO: i32 = 2;

extern "C" {
    /// `signal(2)`. The return value (the previous handler) is a
    /// pointer-sized value we never inspect.
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

extern "C" fn on_sigint(_sig: i32) {
    SIGINT.store(true, Ordering::SeqCst);
}

/// Installs the SIGINT→flag handler. Idempotent; last registration wins.
pub fn install_sigint_flag() {
    // SAFETY: registering a handler that only stores to a static atomic
    // is async-signal-safe, and `signal` itself has no memory-safety
    // preconditions beyond a valid function pointer.
    unsafe {
        let _ = signal(SIGINT_NO, on_sigint);
    }
}

/// Whether SIGINT has arrived since [`install_sigint_flag`].
pub fn sigint_received() -> bool {
    SIGINT.load(Ordering::SeqCst)
}

/// Clears the flag (tests re-enter the accept loop in one process).
pub fn reset_sigint_flag() {
    SIGINT.store(false, Ordering::SeqCst);
}
