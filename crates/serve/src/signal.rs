//! SIGINT/SIGTERM → shutdown flag, with no libc crate to lean on.
//!
//! The daemon's accept loop polls [`shutdown_signal_received`] between
//! non-blocking accepts, so Ctrl-C *and* a container-style `SIGTERM`
//! (docker stop, systemd, Kubernetes) land as a graceful shutdown
//! (drain jobs, flush the result log, unlink the socket) instead of the
//! process dying mid-write. This is the one module in the workspace
//! allowed to use `unsafe`: std has no signal API, and the whole
//! surface is two `signal(2)` registrations whose shared handler stores
//! to an atomic — the only thing that is async-signal-safe anyway.
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// POSIX `SIGINT` — identical on every platform this repo targets.
const SIGINT_NO: i32 = 2;
/// POSIX `SIGTERM` — likewise.
const SIGTERM_NO: i32 = 15;

extern "C" {
    /// `signal(2)`. The return value (the previous handler) is a
    /// pointer-sized value we never inspect.
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

extern "C" fn on_shutdown_signal(_sig: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs the SIGINT/SIGTERM→flag handlers. Idempotent; last
/// registration wins.
pub fn install_shutdown_flags() {
    // SAFETY: registering a handler that only stores to a static atomic
    // is async-signal-safe, and `signal` itself has no memory-safety
    // preconditions beyond a valid function pointer.
    unsafe {
        let _ = signal(SIGINT_NO, on_shutdown_signal);
        let _ = signal(SIGTERM_NO, on_shutdown_signal);
    }
}

/// Whether SIGINT or SIGTERM has arrived since
/// [`install_shutdown_flags`].
pub fn shutdown_signal_received() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Clears the flag (tests re-enter the accept loop in one process).
pub fn reset_shutdown_flag() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}
