//! The dispatcher: a bounded job queue feeding a small worker pool.
//!
//! Work requests (`experiment`, `profile`, `sweep`) are queued with a
//! fresh job id and a [`CancelToken`]; synchronous verbs never enter the
//! queue. Each submitted job hands back an [`mpsc::Receiver`] of
//! [`JobEvent`]s that the connection thread frames onto the wire, so a
//! slow client never blocks a worker — events buffer in the channel.
//!
//! Cancellation is cooperative end to end: `cancel` fires the job's
//! token, and the harness/sweep checkpoints abort the run at the next
//! cell or experiment boundary with `HarnessError::Cancelled`. A token
//! registry keyed by job id covers both queued jobs (cancelled before a
//! worker ever picks them up) and running ones.
//!
//! Telemetry: `serve_requests_accepted/completed/cancelled` count job
//! outcomes, `serve_queue_high_water` records the deepest the pending
//! queue ever got (via [`wp_obs::record_max`]).

use std::collections::{HashMap, VecDeque};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use whirlpool_repro::harness::{panic_message, CancelToken};

use crate::ops::{self, OpCtx};
use crate::protocol::Request;
use crate::store::ServeStore;

/// One event in a job's response stream.
#[derive(Debug, Clone, PartialEq)]
pub enum JobEvent {
    /// One line of the op's stdout, verbatim.
    Line(String),
    /// The op finished cleanly after emitting `lines` lines.
    Done {
        /// How many [`JobEvent::Line`]s preceded this.
        lines: usize,
    },
    /// The op failed (or was cancelled).
    Error {
        /// Whether the failure was a fired cancel token.
        cancelled: bool,
        /// The op's one-line error message.
        message: String,
    },
}

struct Job {
    id: u64,
    req: Request,
    cancel: CancelToken,
    tx: mpsc::Sender<JobEvent>,
}

struct QueueState {
    pending: VecDeque<Job>,
    /// Cancel tokens for every queued *and* running job.
    tokens: HashMap<u64, CancelToken>,
    /// Verb labels for the status job table, same key set as `tokens`.
    verbs: HashMap<u64, String>,
    next_id: u64,
    running: usize,
    completed: u64,
    cancelled: u64,
    shutting_down: bool,
}

struct Inner {
    state: Mutex<QueueState>,
    wake: Condvar,
    store: Arc<ServeStore>,
    capacity: usize,
    /// Wall-clock budget armed on each job's cancel token as a worker
    /// picks it up; `None` = unbounded (the historical behaviour).
    job_timeout: Option<Duration>,
}

/// The job queue plus its worker pool. Constructed once per daemon and
/// shared behind an `Arc` with every connection thread.
pub struct Dispatcher {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Dispatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.inner.state.lock().expect("dispatcher state");
        f.debug_struct("Dispatcher")
            .field("pending", &s.pending.len())
            .field("running", &s.running)
            .field("capacity", &self.inner.capacity)
            .finish()
    }
}

impl Dispatcher {
    /// Starts `workers` worker threads over a queue bounded at
    /// `capacity` pending jobs, with no per-job timeout.
    pub fn start(store: Arc<ServeStore>, workers: usize, capacity: usize) -> Self {
        Self::start_with_timeout(store, workers, capacity, None)
    }

    /// [`start`](Self::start) plus a per-job wall-clock budget: each
    /// job's cancel token is armed with the deadline as a worker picks
    /// it up, so a runaway run aborts at its next cooperative
    /// checkpoint and the client gets a typed "timed out" error frame
    /// (distinct from a user cancel) while the daemon keeps serving.
    pub fn start_with_timeout(
        store: Arc<ServeStore>,
        workers: usize,
        capacity: usize,
        job_timeout: Option<Duration>,
    ) -> Self {
        let inner = Arc::new(Inner {
            state: Mutex::new(QueueState {
                pending: VecDeque::new(),
                tokens: HashMap::new(),
                verbs: HashMap::new(),
                next_id: 1,
                running: 0,
                completed: 0,
                cancelled: 0,
                shutting_down: false,
            }),
            wake: Condvar::new(),
            store,
            capacity: capacity.max(1),
            job_timeout,
        });
        let handles = (0..workers.max(1))
            .map(|n| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("wp-serve-worker-{n}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker thread")
            })
            .collect();
        Self {
            inner,
            workers: Mutex::new(handles),
        }
    }

    /// Queues a work request, returning its job id and event stream.
    ///
    /// # Errors
    ///
    /// A one-line message when the queue is full, the daemon is
    /// shutting down, or the request is not a work verb.
    pub fn submit(&self, req: Request) -> Result<(u64, mpsc::Receiver<JobEvent>), String> {
        if !req.is_work() {
            return Err(format!("'{}' is not a queued work verb", req.verb()));
        }
        let mut s = self.inner.state.lock().expect("dispatcher state");
        if s.shutting_down {
            return Err("daemon is shutting down; request rejected".into());
        }
        if s.pending.len() >= self.inner.capacity {
            return Err(format!(
                "job queue is full ({} pending); retry after a job drains",
                s.pending.len()
            ));
        }
        let id = s.next_id;
        s.next_id += 1;
        let cancel = CancelToken::new();
        s.tokens.insert(id, cancel.clone());
        s.verbs.insert(id, req.verb());
        let (tx, rx) = mpsc::channel();
        s.pending.push_back(Job {
            id,
            req,
            cancel,
            tx,
        });
        wp_obs::add(wp_obs::Counter::ServeRequestsAccepted, 1);
        wp_obs::record_max(wp_obs::Counter::ServeQueueHighWater, s.pending.len() as u64);
        drop(s);
        self.inner.wake.notify_one();
        Ok((id, rx))
    }

    /// Fires job `id`'s cancel token (queued or running). Returns
    /// whether the job was live.
    pub fn cancel(&self, id: u64) -> bool {
        let s = self.inner.state.lock().expect("dispatcher state");
        match s.tokens.get(&id) {
            Some(tok) => {
                tok.cancel();
                true
            }
            None => false,
        }
    }

    /// The `status` verb's payload: queue/runtime counts, the live job
    /// table, and store occupancy.
    pub fn status_json(&self) -> String {
        let s = self.inner.state.lock().expect("dispatcher state");
        let mut jobs: Vec<(u64, &String)> = s.verbs.iter().map(|(id, v)| (*id, v)).collect();
        jobs.sort_by_key(|(id, _)| *id);
        let rows: Vec<String> = jobs
            .iter()
            .map(|(id, verb)| {
                let cancelling = s.tokens.get(id).is_some_and(CancelToken::is_cancelled);
                format!(
                    "{{\"id\":{id},\"verb\":{},\"cancelling\":{cancelling}}}",
                    wp_sim::json_string(verb)
                )
            })
            .collect();
        format!(
            "{{\"type\":\"status\",\"queue_depth\":{},\"running\":{},\"completed\":{},\
             \"cancelled\":{},\"warm_traces\":{},\"curves\":{},\"jobs\":[{}]}}",
            s.pending.len(),
            s.running,
            s.completed,
            s.cancelled,
            self.inner.store.warm_traces(),
            self.inner.store.curves_held(),
            rows.join(","),
        )
    }

    /// Whether any job is queued or running.
    pub fn is_idle(&self) -> bool {
        let s = self.inner.state.lock().expect("dispatcher state");
        s.pending.is_empty() && s.running == 0
    }

    /// Begins shutdown: rejects new work, fires every live job's cancel
    /// token, and wakes the workers so the queue drains through the
    /// cancellation checkpoints (each queued job still reports an
    /// `error` frame to its client instead of vanishing).
    pub fn begin_shutdown(&self) {
        let s = self.inner.state.lock().expect("dispatcher state");
        if s.shutting_down {
            return;
        }
        for tok in s.tokens.values() {
            tok.cancel();
        }
        let mut s = s;
        s.shutting_down = true;
        drop(s);
        self.inner.wake.notify_all();
    }

    /// Waits for the queue to drain and every worker to exit. Call after
    /// [`Self::begin_shutdown`].
    pub fn join(&self) {
        let handles: Vec<_> = self
            .workers
            .lock()
            .expect("worker handles")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut s = inner.state.lock().expect("dispatcher state");
            loop {
                if let Some(job) = s.pending.pop_front() {
                    s.running += 1;
                    break job;
                }
                if s.shutting_down {
                    return;
                }
                s = inner.wake.wait(s).expect("dispatcher state");
            }
        };
        if let Some(budget) = inner.job_timeout {
            job.cancel.set_deadline_in(Some(budget));
        }
        let ctx = OpCtx {
            store: Some(Arc::clone(&inner.store)),
            cancel: Some(job.cancel.clone()),
        };
        // Worker isolation: a panicking op fails its own job with a
        // typed one-line error; the worker thread (and the daemon)
        // keep serving. The fault probes sit inside the unwind scope
        // so an injected panic exercises exactly this path.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if wp_fault::fire(wp_fault::FaultPoint::WorkerPanic).is_some() {
                wp_obs::add(wp_obs::Counter::FaultsInjected, 1);
                panic!("injected worker fault");
            }
            if let Some(shot) = wp_fault::fire(wp_fault::FaultPoint::WorkerSlow) {
                wp_obs::add(wp_obs::Counter::FaultsInjected, 1);
                std::thread::sleep(Duration::from_millis(shot.millis));
            }
            ops::run_request(&job.req, &ctx)
        }))
        .unwrap_or_else(|payload| {
            wp_obs::add(wp_obs::Counter::ServeWorkerPanics, 1);
            Err(format!("worker panicked: {}", panic_message(payload)))
        });
        // A deadline-fired token surfaces as `Cancelled` from the run's
        // checkpoints; relabel it so clients can tell a daemon-imposed
        // timeout from a user cancel (and it is counted separately).
        let timed_out = job.cancel.timed_out();
        let result = match result {
            Err(_) if timed_out => {
                wp_obs::add(wp_obs::Counter::ServeJobTimeouts, 1);
                let ms = inner.job_timeout.map_or(0, |d| d.as_millis());
                Err(format!(
                    "job {} timed out after {ms}ms and was cancelled",
                    job.id
                ))
            }
            r => r,
        };
        let mut s = inner.state.lock().expect("dispatcher state");
        s.running -= 1;
        s.tokens.remove(&job.id);
        s.verbs.remove(&job.id);
        let verb = job.req.verb();
        match &result {
            Ok(lines) => {
                s.completed += 1;
                wp_obs::add(wp_obs::Counter::ServeRequestsCompleted, 1);
                inner.store.log_line(&format!(
                    "{{\"job\":{},\"verb\":{},\"ok\":true,\"lines\":{}}}",
                    job.id,
                    wp_sim::json_string(&verb),
                    lines.len(),
                ));
            }
            Err(message) => {
                // A timed-out job is an outcome the daemon imposed, not
                // a user cancel: log and count it as completed-with-
                // error so `cancelled` keeps meaning "someone asked".
                let cancelled = job.cancel.is_cancelled() && !timed_out;
                if cancelled {
                    s.cancelled += 1;
                    wp_obs::add(wp_obs::Counter::ServeRequestsCancelled, 1);
                } else {
                    s.completed += 1;
                    wp_obs::add(wp_obs::Counter::ServeRequestsCompleted, 1);
                }
                inner.store.log_line(&format!(
                    "{{\"job\":{},\"verb\":{},\"ok\":false,\"cancelled\":{cancelled},\
                     \"error\":{}}}",
                    job.id,
                    wp_sim::json_string(&verb),
                    wp_sim::json_string(message),
                ));
            }
        }
        drop(s);
        // A vanished client just drops the events; the job itself (and
        // its result-log line) completed either way.
        match result {
            Ok(lines) => {
                let n = lines.len();
                for line in lines {
                    let _ = job.tx.send(JobEvent::Line(line));
                }
                let _ = job.tx.send(JobEvent::Done { lines: n });
            }
            Err(message) => {
                let _ = job.tx.send(JobEvent::Error {
                    cancelled: job.cancel.is_cancelled() && !timed_out,
                    message,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ExpOp;

    fn test_store(tag: &str) -> Arc<ServeStore> {
        let base = std::env::temp_dir().join(format!("wp-dispatch-{}-{tag}", std::process::id()));
        Arc::new(ServeStore::open(base.join("cache"), &base.join("state")).unwrap())
    }

    #[test]
    fn bad_argv_jobs_report_errors_without_killing_workers() {
        let d = Dispatcher::start(test_store("bad"), 1, 4);
        let (id, rx) = d
            .submit(Request::Experiment {
                op: ExpOp::Replay,
                argv: vec!["--bogus-flag".into()],
            })
            .unwrap();
        assert_eq!(id, 1);
        match rx.recv().unwrap() {
            JobEvent::Error { cancelled, message } => {
                assert!(!cancelled);
                assert!(message.contains("bogus"), "message: {message}");
            }
            other => panic!("expected an error event, got {other:?}"),
        }
        // The worker survived and picks up the next job.
        let (id2, rx2) = d.submit(Request::Profile { argv: vec![] }).unwrap();
        assert_eq!(id2, 2);
        assert!(matches!(rx2.recv().unwrap(), JobEvent::Error { .. }));
        d.begin_shutdown();
        d.join();
    }

    #[test]
    fn queue_capacity_and_shutdown_reject_new_work() {
        let d = Dispatcher::start(test_store("cap"), 1, 1);
        // Saturate the single worker with a job that blocks long enough
        // to let a second one sit in the queue (a real-but-tiny run
        // would race; a pre-cancelled one is deterministic and instant,
        // so instead pile jobs faster than needed: fill the queue while
        // the worker is busy with the first pop).
        d.begin_shutdown();
        let err = d.submit(Request::Profile { argv: vec![] }).unwrap_err();
        assert!(err.contains("shutting down"), "err: {err}");
        d.join();
        assert!(d.is_idle());
    }

    #[test]
    fn injected_worker_panic_fails_one_job_and_keeps_the_daemon_serving() {
        let _guard = wp_fault::test_guard();
        wp_fault::install(wp_fault::FaultPlan::parse("worker-panic@1:1").unwrap());
        let d = Dispatcher::start(test_store("panic"), 1, 4);
        let (_, rx) = d.submit(Request::Profile { argv: vec![] }).unwrap();
        match rx.recv().unwrap() {
            JobEvent::Error { cancelled, message } => {
                assert!(!cancelled);
                assert!(
                    message.contains("worker panicked") && message.contains("injected"),
                    "message: {message}"
                );
            }
            other => panic!("expected an error event, got {other:?}"),
        }
        wp_fault::clear();
        // The same (sole) worker thread survived the unwind and serves
        // the follow-up request; its failure is an argv error, not a
        // panic.
        let (_, rx2) = d.submit(Request::Profile { argv: vec![] }).unwrap();
        match rx2.recv().unwrap() {
            JobEvent::Error { message, .. } => {
                assert!(!message.contains("panicked"), "message: {message}");
            }
            other => panic!("expected an error event, got {other:?}"),
        }
        d.begin_shutdown();
        d.join();
    }

    #[test]
    fn slow_jobs_blow_the_wall_clock_budget_with_a_typed_timeout() {
        let _guard = wp_fault::test_guard();
        wp_fault::install(wp_fault::FaultPlan::parse("worker-slow@1=150:1").unwrap());
        let d = Dispatcher::start_with_timeout(
            test_store("timeout"),
            1,
            4,
            Some(Duration::from_millis(40)),
        );
        let (id, rx) = d
            .submit(Request::Sweep {
                argv: vec![
                    "--apps".into(),
                    "mcf".into(),
                    "--schemes".into(),
                    "LRU".into(),
                ],
            })
            .unwrap();
        match rx.recv().unwrap() {
            JobEvent::Error { cancelled, message } => {
                // Typed and distinct from a user cancel.
                assert!(!cancelled);
                assert!(
                    message.contains(&format!("job {id} timed out after 40ms")),
                    "message: {message}"
                );
            }
            other => panic!("expected a timeout error, got {other:?}"),
        }
        wp_fault::clear();
        d.begin_shutdown();
        d.join();
    }

    #[test]
    fn cancel_hits_queued_jobs_before_a_worker_runs_them() {
        let d = Dispatcher::start(test_store("cxl"), 1, 8);
        // Submit, immediately cancel, and verify the job reports
        // `cancelled` regardless of whether the worker had started it:
        // the ops layer's first checkpoint fires before any real work.
        let (id, rx) = d
            .submit(Request::Experiment {
                op: ExpOp::Record,
                argv: vec![
                    "mcf".into(),
                    "--out".into(),
                    std::env::temp_dir()
                        .join(format!("wp-dispatch-cxl-{}.wpt", std::process::id()))
                        .display()
                        .to_string(),
                ],
            })
            .unwrap();
        assert!(d.cancel(id));
        // Unknown ids report false.
        assert!(!d.cancel(9999));
        let mut cancelled_seen = false;
        while let Ok(ev) = rx.recv() {
            match ev {
                JobEvent::Error { cancelled, .. } => {
                    cancelled_seen = cancelled;
                    break;
                }
                JobEvent::Done { .. } => break,
                JobEvent::Line(_) => {}
            }
        }
        // The run may have finished before the token was checked (tiny
        // budgets); both outcomes are legal, but if it errored it must
        // be marked cancelled.
        if cancelled_seen {
            let status = d.status_json();
            assert!(status.contains("\"cancelled\":1"), "status: {status}");
        }
        d.begin_shutdown();
        d.join();
    }
}
