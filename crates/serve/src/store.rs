//! The daemon's warm state: trace-cache index, memoized MRC curves,
//! append-only result log.
//!
//! Everything a batch run rebuilds per process, the resident store keeps
//! hot across requests:
//!
//! * **Trace index** — an in-memory set of warm capture keys over the
//!   shared `WP_TRACE_CACHE` layout, seeded by one directory scan at
//!   startup and updated as captures land. Sweeps run over it via the
//!   [`TraceStore`] trait, so warm lookups skip the filesystem entirely.
//! * **Curve memo** — profiled MRC curves keyed by the profile request
//!   (file, streams, rate, `s_max`, granule — i.e. the whole argv) plus
//!   the trace file's length and mtime, so an overwritten trace can
//!   never serve a stale curve. Hits and misses are tallied under
//!   `wp_obs::Counter::{CurveStoreHits, CurveStoreMisses}`.
//! * **Result log** — one JSON line per finished job, appended to
//!   `results.jsonl` in the state directory and flushed on shutdown.

use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use wp_bench::store::TraceStore;

/// The resident store. Shared across the listener, dispatcher, and ops
/// layers as an `Arc<ServeStore>`; every interior field carries its own
/// lock, so concurrent jobs never serialize on one global mutex.
#[derive(Debug)]
pub struct ServeStore {
    cache_dir: PathBuf,
    warm: Mutex<HashSet<String>>,
    curves: Mutex<HashMap<String, Arc<String>>>,
    log: Mutex<std::io::BufWriter<std::fs::File>>,
    log_path: PathBuf,
}

impl ServeStore {
    /// Opens the store: scans `cache_dir` for completed `.wpt` captures
    /// (temp files are skipped by construction — they end in
    /// `.tmp.<pid>-<seq>`) and opens `state_dir/results.jsonl` for
    /// append.
    ///
    /// # Errors
    ///
    /// A one-line message if either directory cannot be created or the
    /// result log cannot be opened.
    pub fn open(cache_dir: impl Into<PathBuf>, state_dir: &Path) -> Result<Self, String> {
        let cache_dir = cache_dir.into();
        std::fs::create_dir_all(&cache_dir)
            .map_err(|e| format!("cannot create trace cache {}: {e}", cache_dir.display()))?;
        std::fs::create_dir_all(state_dir)
            .map_err(|e| format!("cannot create state dir {}: {e}", state_dir.display()))?;
        let mut warm = HashSet::new();
        let entries = std::fs::read_dir(&cache_dir)
            .map_err(|e| format!("cannot scan trace cache {}: {e}", cache_dir.display()))?;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(key) = name.strip_suffix(".wpt") {
                warm.insert(key.to_string());
            }
        }
        let log_path = state_dir.join("results.jsonl");
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&log_path)
            .map_err(|e| format!("cannot open result log {}: {e}", log_path.display()))?;
        Ok(Self {
            cache_dir,
            warm: Mutex::new(warm),
            curves: Mutex::new(HashMap::new()),
            log: Mutex::new(std::io::BufWriter::new(file)),
            log_path,
        })
    }

    /// Number of warm capture keys in the index.
    pub fn warm_traces(&self) -> usize {
        self.warm.lock().expect("warm index").len()
    }

    /// Number of memoized curves.
    pub fn curves_held(&self) -> usize {
        self.curves.lock().expect("curve memo").len()
    }

    /// Where the result log lives.
    pub fn log_path(&self) -> &Path {
        &self.log_path
    }

    /// The memo key for a profile request: the argv (which carries the
    /// file, stream set, rate, `s_max`, granule, and output shape) plus
    /// the trace file's length and mtime-nanos, so rewriting the trace
    /// invalidates every curve derived from it.
    pub fn curve_key(argv: &[String], file: &Path) -> String {
        let identity = std::fs::metadata(file)
            .map(|m| {
                let mtime = m
                    .modified()
                    .ok()
                    .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
                    .map_or(0, |d| d.as_nanos());
                format!("{}:{}", m.len(), mtime)
            })
            .unwrap_or_else(|_| "missing".into());
        format!("{identity}|{}", argv.join("\u{1f}"))
    }

    /// Looks `key` up in the curve memo, tallying hit/miss counters.
    pub fn curve_lookup(&self, key: &str) -> Option<Arc<String>> {
        let hit = self.curves.lock().expect("curve memo").get(key).cloned();
        wp_obs::add(
            if hit.is_some() {
                wp_obs::Counter::CurveStoreHits
            } else {
                wp_obs::Counter::CurveStoreMisses
            },
            1,
        );
        hit
    }

    /// Memoizes a freshly computed curve payload.
    pub fn curve_insert(&self, key: String, payload: String) {
        self.curves
            .lock()
            .expect("curve memo")
            .insert(key, Arc::new(payload));
    }

    /// Appends one line to the result log (newline added here).
    pub fn log_line(&self, line: &str) {
        let mut log = self.log.lock().expect("result log");
        let _ = writeln!(log, "{line}");
    }

    /// Flushes the result log (shutdown path).
    pub fn flush(&self) {
        let _ = self.log.lock().expect("result log").flush();
    }
}

impl TraceStore for ServeStore {
    fn dir(&self) -> &Path {
        &self.cache_dir
    }

    /// Warm iff indexed — with a filesystem fallback so captures made by
    /// concurrent *batch* processes sharing the cache directory are
    /// picked up (and indexed) rather than re-run.
    fn contains(&self, key: &str) -> bool {
        let mut warm = self.warm.lock().expect("warm index");
        if warm.contains(key) {
            return true;
        }
        if self.path(key).exists() {
            warm.insert(key.to_string());
            return true;
        }
        false
    }

    fn note_captured(&self, key: &str) {
        self.warm
            .lock()
            .expect("warm index")
            .insert(key.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dirs(tag: &str) -> (PathBuf, PathBuf) {
        let base = std::env::temp_dir().join(format!("wp-servestore-{}-{tag}", std::process::id()));
        (base.join("cache"), base.join("state"))
    }

    #[test]
    fn open_seeds_the_warm_index_and_skips_temp_files() {
        let (cache, state) = tmp_dirs("seed");
        std::fs::create_dir_all(&cache).unwrap();
        std::fs::write(cache.join("a-w1-m2.wpt"), b"x").unwrap();
        std::fs::write(cache.join("b-w1-m2.wpt.tmp.1-0"), b"partial").unwrap();
        let store = ServeStore::open(&cache, &state).unwrap();
        assert_eq!(store.warm_traces(), 1);
        assert!(store.contains("a-w1-m2"));
        assert!(!store.contains("b-w1-m2"));
        // A capture landing on disk behind the index's back is adopted.
        std::fs::write(cache.join("c-w1-m2.wpt"), b"x").unwrap();
        assert!(store.contains("c-w1-m2"));
        assert_eq!(store.warm_traces(), 2);
        let _ = std::fs::remove_dir_all(cache.parent().unwrap());
    }

    #[test]
    fn curve_key_tracks_file_identity() {
        let (cache, state) = tmp_dirs("curvekey");
        std::fs::create_dir_all(&cache).unwrap();
        let trace = cache.join("t.wpt");
        std::fs::write(&trace, b"one").unwrap();
        let argv = vec![trace.display().to_string(), "--json".to_string()];
        let k1 = ServeStore::curve_key(&argv, &trace);
        std::fs::write(&trace, b"rewritten longer").unwrap();
        let k2 = ServeStore::curve_key(&argv, &trace);
        assert_ne!(k1, k2, "rewriting the trace must invalidate the memo");
        let store = ServeStore::open(&cache, &state).unwrap();
        store.curve_insert(k2.clone(), "payload".into());
        assert_eq!(
            store.curve_lookup(&k2).as_deref().map(String::as_str),
            Some("payload")
        );
        assert!(store.curve_lookup(&k1).is_none());
        let _ = std::fs::remove_dir_all(cache.parent().unwrap());
    }
}
