//! The daemon's warm state: trace-cache index, memoized MRC curves,
//! append-only result log.
//!
//! Everything a batch run rebuilds per process, the resident store keeps
//! hot across requests:
//!
//! * **Trace index** — an in-memory set of warm capture keys over the
//!   shared `WP_TRACE_CACHE` layout, seeded by one directory scan at
//!   startup and updated as captures land. Sweeps run over it via the
//!   [`TraceStore`] trait, so warm lookups skip the filesystem entirely.
//! * **Curve memo** — profiled MRC curves keyed by the profile request
//!   (file, streams, rate, `s_max`, granule — i.e. the whole argv) plus
//!   the trace file's length and mtime, so an overwritten trace can
//!   never serve a stale curve. Hits and misses are tallied under
//!   `wp_obs::Counter::{CurveStoreHits, CurveStoreMisses}`.
//! * **Result log** — one JSON line per finished job, appended to
//!   `results.jsonl` in the state directory and flushed on shutdown.
//!   When the log crosses its size limit (16 MiB by default) it is
//!   rotated: the current file is atomically renamed to
//!   `results.jsonl.1` and a fresh `results.jsonl` is opened, so a
//!   long-lived daemon's log stays bounded at two generations and no
//!   record is ever lost or duplicated across the boundary.

use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use wp_bench::store::TraceStore;

/// Default result-log size limit before rotation kicks in.
const DEFAULT_LOG_LIMIT: u64 = 16 * 1024 * 1024;

/// The open result log plus the byte count that triggers rotation.
/// One struct behind one mutex so the append and the size check can
/// never race each other.
#[derive(Debug)]
struct LogState {
    writer: std::io::BufWriter<std::fs::File>,
    /// Bytes written to the *current* generation, seeded from the file's
    /// length at open so a restarted daemon keeps honoring the limit.
    bytes: u64,
    limit: u64,
}

/// Repairs a result log whose final append was torn — a daemon killed
/// mid-`write(2)` leaves a partial record with no trailing newline.
/// Every complete record ends in `\n` by construction, so the repair is
/// exact: truncate to just past the last newline (or to empty if the
/// whole file is one partial record). Counted under
/// `serve_log_torn_tails` and reported in one stderr line; any I/O
/// failure leaves the file untouched (append still works, and the torn
/// tail merely makes the next record's line unparseable — the same
/// deal readers already get from arbitrary external corruption).
fn recover_torn_tail(log_path: &Path) {
    let Ok(bytes) = std::fs::read(log_path) else {
        return;
    };
    if bytes.is_empty() || bytes.ends_with(b"\n") {
        return;
    }
    let keep = bytes
        .iter()
        .rposition(|&b| b == b'\n')
        .map_or(0, |at| at + 1);
    let torn = bytes.len() - keep;
    match std::fs::OpenOptions::new().write(true).open(log_path) {
        Ok(file) if file.set_len(keep as u64).is_ok() => {
            wp_obs::add(wp_obs::Counter::ServeLogTornTails, 1);
            eprintln!(
                "[serve] recovered torn tail in {}: dropped {torn} partial byte(s)",
                log_path.display()
            );
        }
        _ => {}
    }
}

/// The resident store. Shared across the listener, dispatcher, and ops
/// layers as an `Arc<ServeStore>`; every interior field carries its own
/// lock, so concurrent jobs never serialize on one global mutex.
#[derive(Debug)]
pub struct ServeStore {
    cache_dir: PathBuf,
    warm: Mutex<HashSet<String>>,
    curves: Mutex<HashMap<String, Arc<String>>>,
    log: Mutex<LogState>,
    log_path: PathBuf,
}

impl ServeStore {
    /// Opens the store: scans `cache_dir` for completed `.wpt` captures
    /// (temp files are skipped by construction — they end in
    /// `.tmp.<pid>-<seq>`) and opens `state_dir/results.jsonl` for
    /// append.
    ///
    /// # Errors
    ///
    /// A one-line message if either directory cannot be created or the
    /// result log cannot be opened.
    pub fn open(cache_dir: impl Into<PathBuf>, state_dir: &Path) -> Result<Self, String> {
        let cache_dir = cache_dir.into();
        std::fs::create_dir_all(&cache_dir)
            .map_err(|e| format!("cannot create trace cache {}: {e}", cache_dir.display()))?;
        std::fs::create_dir_all(state_dir)
            .map_err(|e| format!("cannot create state dir {}: {e}", state_dir.display()))?;
        let mut warm = HashSet::new();
        let entries = std::fs::read_dir(&cache_dir)
            .map_err(|e| format!("cannot scan trace cache {}: {e}", cache_dir.display()))?;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(key) = name.strip_suffix(".wpt") {
                warm.insert(key.to_string());
            }
        }
        let log_path = state_dir.join("results.jsonl");
        recover_torn_tail(&log_path);
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&log_path)
            .map_err(|e| format!("cannot open result log {}: {e}", log_path.display()))?;
        let bytes = file.metadata().map(|m| m.len()).unwrap_or(0);
        Ok(Self {
            cache_dir,
            warm: Mutex::new(warm),
            curves: Mutex::new(HashMap::new()),
            log: Mutex::new(LogState {
                writer: std::io::BufWriter::new(file),
                bytes,
                limit: DEFAULT_LOG_LIMIT,
            }),
            log_path,
        })
    }

    /// Number of warm capture keys in the index.
    pub fn warm_traces(&self) -> usize {
        self.warm.lock().expect("warm index").len()
    }

    /// Number of memoized curves.
    pub fn curves_held(&self) -> usize {
        self.curves.lock().expect("curve memo").len()
    }

    /// Where the result log lives.
    pub fn log_path(&self) -> &Path {
        &self.log_path
    }

    /// The memo key for a profile request: the argv (which carries the
    /// file, stream set, rate, `s_max`, granule, and output shape) plus
    /// the trace file's length and mtime-nanos, so rewriting the trace
    /// invalidates every curve derived from it.
    pub fn curve_key(argv: &[String], file: &Path) -> String {
        let identity = std::fs::metadata(file)
            .map(|m| {
                let mtime = m
                    .modified()
                    .ok()
                    .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
                    .map_or(0, |d| d.as_nanos());
                format!("{}:{}", m.len(), mtime)
            })
            .unwrap_or_else(|_| "missing".into());
        format!("{identity}|{}", argv.join("\u{1f}"))
    }

    /// Looks `key` up in the curve memo, tallying hit/miss counters.
    pub fn curve_lookup(&self, key: &str) -> Option<Arc<String>> {
        let hit = self.curves.lock().expect("curve memo").get(key).cloned();
        wp_obs::add(
            if hit.is_some() {
                wp_obs::Counter::CurveStoreHits
            } else {
                wp_obs::Counter::CurveStoreMisses
            },
            1,
        );
        hit
    }

    /// Memoizes a freshly computed curve payload.
    pub fn curve_insert(&self, key: String, payload: String) {
        self.curves
            .lock()
            .expect("curve memo")
            .insert(key, Arc::new(payload));
    }

    /// Appends one line to the result log (newline added here), rotating
    /// the log first if this line would push the current generation past
    /// its size limit — so every line lands wholly in one generation and
    /// the union of `results.jsonl` and `results.jsonl.1` holds each
    /// record exactly once.
    pub fn log_line(&self, line: &str) {
        let mut log = self.log.lock().expect("result log");
        let incoming = line.len() as u64 + 1;
        if log.bytes > 0 && log.bytes + incoming > log.limit {
            self.rotate(&mut log);
        }
        let _ = writeln!(log.writer, "{line}");
        log.bytes += incoming;
    }

    /// Lowers (or raises) the rotation limit — tests use a tiny limit to
    /// exercise rotation without writing megabytes.
    pub fn set_log_limit(&self, bytes: u64) {
        self.log.lock().expect("result log").limit = bytes.max(1);
    }

    /// Rotates the result log: flush, atomically rename the current file
    /// to `results.jsonl.1` (replacing any previous rotation), reopen a
    /// fresh `results.jsonl`. Every step degrades safely: if the flush or
    /// rename fails the current generation just keeps growing; if the
    /// reopen fails the old handle still points at the renamed file, so
    /// records are never dropped either way.
    fn rotate(&self, log: &mut LogState) {
        if log.writer.flush().is_err() {
            return;
        }
        let rotated = self.log_path.with_extension("jsonl.1");
        if std::fs::rename(&self.log_path, &rotated).is_err() {
            return;
        }
        match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.log_path)
        {
            Ok(file) => {
                log.writer = std::io::BufWriter::new(file);
                log.bytes = 0;
            }
            Err(_) => {
                // Keep appending through the old handle (now pointing at
                // the rotated file); reset the counter so we don't retry
                // the rename on every line.
                log.bytes = 0;
            }
        }
    }

    /// Flushes the result log (shutdown path).
    pub fn flush(&self) {
        let _ = self.log.lock().expect("result log").writer.flush();
    }
}

impl TraceStore for ServeStore {
    fn dir(&self) -> &Path {
        &self.cache_dir
    }

    /// Warm iff indexed — with a filesystem fallback so captures made by
    /// concurrent *batch* processes sharing the cache directory are
    /// picked up (and indexed) rather than re-run.
    fn contains(&self, key: &str) -> bool {
        let mut warm = self.warm.lock().expect("warm index");
        if warm.contains(key) {
            return true;
        }
        if self.path(key).exists() {
            warm.insert(key.to_string());
            return true;
        }
        false
    }

    fn note_captured(&self, key: &str) {
        self.warm
            .lock()
            .expect("warm index")
            .insert(key.to_string());
    }

    /// Evicts a corrupt capture: the file *and* its warm-index entry,
    /// so the next `contains` check honestly reports cold and the
    /// sweep's self-healing re-capture path takes over.
    fn evict(&self, key: &str) {
        self.warm.lock().expect("warm index").remove(key);
        let _ = std::fs::remove_file(self.path(key));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dirs(tag: &str) -> (PathBuf, PathBuf) {
        let base = std::env::temp_dir().join(format!("wp-servestore-{}-{tag}", std::process::id()));
        (base.join("cache"), base.join("state"))
    }

    #[test]
    fn open_seeds_the_warm_index_and_skips_temp_files() {
        let (cache, state) = tmp_dirs("seed");
        std::fs::create_dir_all(&cache).unwrap();
        std::fs::write(cache.join("a-w1-m2.wpt"), b"x").unwrap();
        std::fs::write(cache.join("b-w1-m2.wpt.tmp.1-0"), b"partial").unwrap();
        let store = ServeStore::open(&cache, &state).unwrap();
        assert_eq!(store.warm_traces(), 1);
        assert!(store.contains("a-w1-m2"));
        assert!(!store.contains("b-w1-m2"));
        // A capture landing on disk behind the index's back is adopted.
        std::fs::write(cache.join("c-w1-m2.wpt"), b"x").unwrap();
        assert!(store.contains("c-w1-m2"));
        assert_eq!(store.warm_traces(), 2);
        let _ = std::fs::remove_dir_all(cache.parent().unwrap());
    }

    #[test]
    fn log_rotation_keeps_every_record_exactly_once() {
        let (cache, state) = tmp_dirs("rotate");
        let store = ServeStore::open(&cache, &state).unwrap();
        // Each record is 39 bytes + newline; with a 400-byte limit the
        // log rotates exactly once over 12 records, and the run stays
        // well short of a second rotation (480 < 800).
        store.set_log_limit(400);
        let records: Vec<String> = (0..12)
            .map(|i| format!("{{\"type\":\"result\",\"job\":{i:02},\"lines\":0007}}"))
            .collect();
        for r in &records {
            assert_eq!(r.len(), 39, "fixed-width records keep the math exact");
            store.log_line(r);
        }
        store.flush();
        let current = std::fs::read_to_string(state.join("results.jsonl")).unwrap();
        let rotated = std::fs::read_to_string(state.join("results.jsonl.1")).unwrap();
        assert!(!current.is_empty() && !rotated.is_empty());
        let mut seen: Vec<&str> = rotated.lines().chain(current.lines()).collect();
        assert_eq!(
            seen,
            records.iter().map(String::as_str).collect::<Vec<_>>(),
            "rotated-then-current must replay the exact append order"
        );
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), records.len(), "no record dropped or duplicated");
        // A reopened store seeds its byte count from the surviving file.
        drop(store);
        let store = ServeStore::open(&cache, &state).unwrap();
        store.set_log_limit(400);
        for r in &records {
            store.log_line(r);
        }
        store.flush();
        let current = std::fs::read_to_string(state.join("results.jsonl")).unwrap();
        let rotated = std::fs::read_to_string(state.join("results.jsonl.1")).unwrap();
        assert_eq!(
            current.lines().count() + rotated.lines().count(),
            records.len() + 2,
            "the second generation rotates against the seeded byte count"
        );
        let _ = std::fs::remove_dir_all(cache.parent().unwrap());
    }

    #[test]
    fn open_truncates_exactly_the_torn_tail_record() {
        let (cache, state) = tmp_dirs("torntail");
        std::fs::create_dir_all(&state).unwrap();
        let log = state.join("results.jsonl");
        // Two complete records, then a record torn mid-append (no '\n').
        std::fs::write(
            &log,
            b"{\"type\":\"result\",\"job\":1}\n{\"type\":\"result\",\"job\":2}\n{\"type\":\"res",
        )
        .unwrap();
        let store = ServeStore::open(&cache, &state).unwrap();
        let healed = std::fs::read_to_string(&log).unwrap();
        assert_eq!(
            healed, "{\"type\":\"result\",\"job\":1}\n{\"type\":\"result\",\"job\":2}\n",
            "recovery must drop exactly the partial record, nothing more"
        );
        // Appends land after the healed tail, and rotation still
        // round-trips against the recovered byte count.
        store.set_log_limit(healed.len() as u64 + 30);
        store.log_line("{\"type\":\"result\",\"job\":3}");
        store.log_line("{\"type\":\"result\",\"job\":4}");
        store.flush();
        let current = std::fs::read_to_string(&log).unwrap();
        let rotated = std::fs::read_to_string(state.join("results.jsonl.1")).unwrap();
        let replay: Vec<&str> = rotated.lines().chain(current.lines()).collect();
        assert_eq!(
            replay,
            vec![
                "{\"type\":\"result\",\"job\":1}",
                "{\"type\":\"result\",\"job\":2}",
                "{\"type\":\"result\",\"job\":3}",
                "{\"type\":\"result\",\"job\":4}",
            ],
            "healed log + rotation must replay every complete record once"
        );
        // A log that is ALL torn (one partial record, no newline) heals
        // to empty rather than erroring.
        drop(store);
        std::fs::remove_file(state.join("results.jsonl.1")).unwrap();
        std::fs::write(&log, b"{\"type\":\"res").unwrap();
        let _store = ServeStore::open(&cache, &state).unwrap();
        assert_eq!(std::fs::read(&log).unwrap(), b"");
        let _ = std::fs::remove_dir_all(cache.parent().unwrap());
    }

    #[test]
    fn evict_drops_both_the_file_and_the_warm_index_entry() {
        let (cache, state) = tmp_dirs("evict");
        std::fs::create_dir_all(&cache).unwrap();
        std::fs::write(cache.join("mcf-w1-m2.wpt"), b"corrupt").unwrap();
        let store = ServeStore::open(&cache, &state).unwrap();
        assert!(store.contains("mcf-w1-m2"));
        store.evict("mcf-w1-m2");
        assert!(
            !store.contains("mcf-w1-m2"),
            "the index must not resurrect an evicted key"
        );
        assert!(!cache.join("mcf-w1-m2.wpt").exists());
        let _ = std::fs::remove_dir_all(cache.parent().unwrap());
    }

    #[test]
    fn curve_key_tracks_file_identity() {
        let (cache, state) = tmp_dirs("curvekey");
        std::fs::create_dir_all(&cache).unwrap();
        let trace = cache.join("t.wpt");
        std::fs::write(&trace, b"one").unwrap();
        let argv = vec![trace.display().to_string(), "--json".to_string()];
        let k1 = ServeStore::curve_key(&argv, &trace);
        std::fs::write(&trace, b"rewritten longer").unwrap();
        let k2 = ServeStore::curve_key(&argv, &trace);
        assert_ne!(k1, k2, "rewriting the trace must invalidate the memo");
        let store = ServeStore::open(&cache, &state).unwrap();
        store.curve_insert(k2.clone(), "payload".into());
        assert_eq!(
            store.curve_lookup(&k2).as_deref().map(String::as_str),
            Some("payload")
        );
        assert!(store.curve_lookup(&k1).is_none());
        let _ = std::fs::remove_dir_all(cache.parent().unwrap());
    }
}
