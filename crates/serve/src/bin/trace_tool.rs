//! `trace_tool` — record, inspect, replay, profile, and sweep `.wpt`
//! access traces, offline or against a resident `wp-serve` daemon.
//!
//! ```text
//! trace_tool record <app>... --out <file> [--scheme S] [--classification C]
//!                          [--warmup N] [--measure N] [--sixteen-core]
//! trace_tool record --parallel <app> --out <file> [--scheme S] [--policy paws|stealing]
//! trace_tool info   <file>
//! trace_tool dump   <file> [--limit N] [--stream K]
//! trace_tool replay <file> [--scheme S | --all-schemes] [--stream K | --mix]
//!                          [--warmup N] [--measure N] [--no-pools] [--sixteen-core]
//! trace_tool profile <file> [--stream K | --all-streams]
//!                           [--exact | --sample-rate R] [--s-max N]
//!                           [--granule L] [--json]
//!                           [--verify-exact] [--max-err E] [--capacity-slack S]
//! trace_tool sweep --apps a,b[,...] [--schemes S,...] [--warmup N --measure N]
//!                  [--jobs N] [--cache-dir D] [--exec per-event|batched] [--full-json]
//! trace_tool scenario <file.wps> [--schemes S,...] [--jobs N]
//!                     [--exec per-event|batched] [--timeline] [--check-timeline]
//! trace_tool bench-check --baseline <BENCH_*.json>... --fresh-dir <dir>
//!                        [--max-regress R]
//! trace_tool obs <app|file> [--scheme S] [--classification C]
//!                           [--warmup N] [--measure N] [--sixteen-core]
//!                           [--sample-every N] [--obs-out <file>]
//! trace_tool serve [--socket P] [--cache-dir D] [--state-dir D]
//!                  [--workers N] [--queue N] [--timeout-ms T]
//! trace_tool serve-bench [--out F] [--clients C] [--requests N] [--cold N]
//! trace_tool tenant-bench [--out F] [--scenario <file.wps>] [--jobs N]
//! trace_tool status|metrics|shutdown --connect <sock>
//! trace_tool cancel <job> --connect <sock>
//! ```
//!
//! Every work subcommand (`record`, `replay`, `profile`, `sweep`,
//! `scenario`, `obs`)
//! also takes `--connect <sock>`: instead of running locally it ships
//! the identical argument vector to the daemon listening on `<sock>` and
//! prints the streamed reply — byte-identical stdout to the offline
//! invocation, because both ends run the same `wp_serve::ops` functions.
//! `info`, `dump`, and `bench-check` inspect local files and always run
//! locally.
//!
//! `serve` runs the daemon itself (Ctrl-C, SIGTERM, or a `shutdown`
//! request stops it gracefully);
//! `serve-bench` measures warm-daemon throughput against
//! a cold-process baseline and writes the `BENCH_serve.json` CI gate.
//! The remaining verbs are covered by `wp_serve`'s crate docs and the
//! README's "Service mode" section.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use wp_serve::ops::{self, Args, OpCtx};
use wp_serve::{Client, ExpOp, Request, ServeConfig, Server};
use wp_trace::{TraceInfo, TraceReader};

fn main() -> ExitCode {
    // A malformed WP_FAULT spec arms nothing (fail safe), but silently
    // running fault-free when the operator asked for chaos would be the
    // worst outcome — fail fast and loud instead.
    if let Some(err) = wp_fault::env_error() {
        eprintln!("trace_tool: {err}");
        return ExitCode::from(2);
    }
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (connect, args) = match strip_connect(argv) {
        Ok(split) => split,
        Err(msg) => {
            eprintln!("trace_tool: {msg}");
            return ExitCode::from(2);
        }
    };
    let result = match args.first().map(String::as_str) {
        Some("record") => run_op(connect, ExpOp::Record.into_request(&args[1..])),
        Some("replay") => run_op(connect, ExpOp::Replay.into_request(&args[1..])),
        Some("obs") => run_op(connect, ExpOp::Obs.into_request(&args[1..])),
        Some("profile") => run_op(
            connect,
            Request::Profile {
                argv: args[1..].to_vec(),
            },
        ),
        Some("sweep") => run_op(
            connect,
            Request::Sweep {
                argv: args[1..].to_vec(),
            },
        ),
        Some("scenario") => run_op(
            connect,
            Request::Scenario {
                argv: args[1..].to_vec(),
            },
        ),
        Some("info") => local_only(connect, "info").and_then(|()| cmd_info(&args[1..])),
        Some("dump") => local_only(connect, "dump").and_then(|()| cmd_dump(&args[1..])),
        Some("bench-check") => {
            local_only(connect, "bench-check").and_then(|()| cmd_bench_check(&args[1..]))
        }
        Some("serve") => local_only(connect, "serve").and_then(|()| cmd_serve(&args[1..])),
        Some("serve-bench") => {
            local_only(connect, "serve-bench").and_then(|()| cmd_serve_bench(&args[1..]))
        }
        Some("tenant-bench") => {
            local_only(connect, "tenant-bench").and_then(|()| cmd_tenant_bench(&args[1..]))
        }
        Some("status") => sync_verb(connect, Request::Status, &args[1..]),
        Some("metrics") => sync_verb(connect, Request::Metrics, &args[1..]),
        Some("shutdown") => sync_verb(connect, Request::Shutdown, &args[1..]),
        Some("cancel") => cmd_cancel(connect, &args[1..]),
        Some("--help" | "-h" | "help") | None => {
            eprint!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => {
            eprintln!("trace_tool: unknown subcommand '{other}'");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("trace_tool: {msg}");
            // A daemon that is draining (or died mid-conversation) is an
            // expected operational condition, not a usage error: exit 1
            // so wrappers can retry, reserving 2 for real failures.
            if wp_serve::client::is_shutdown_error(&msg) {
                ExitCode::from(1)
            } else {
                ExitCode::from(2)
            }
        }
    }
}

const USAGE: &str = "\
usage:
  trace_tool record <app>... --out <file> [--scheme S] [--classification none|manual|auto]
                    [--warmup N] [--measure N] [--sixteen-core]
                    (several apps record a multi-program mix, one stream per core)
  trace_tool record --parallel <app> --out <file> [--scheme S] [--policy paws|stealing]
                    (task-parallel app on the 16-core chip, one stream per core)
  trace_tool info   <file>
  trace_tool dump   <file> [--limit N] [--stream K]
  trace_tool replay <file> [--scheme S | --all-schemes] [--stream K | --mix]
                    [--warmup N] [--measure N] [--no-pools] [--sixteen-core]
  trace_tool profile <file> [--stream K | --all-streams] [--exact | --sample-rate R]
                    [--s-max N] [--granule L] [--json] [--verify-exact] [--max-err E] [--capacity-slack S]
                    (miss curves straight from the trace: exact Mattson or
                     SHARDS-sampled, all requested streams in one scan)
  trace_tool sweep  --apps a,b[,...] [--schemes S,...] [--warmup N --measure N]
                    [--jobs N] [--cache-dir D] [--exec per-event|batched] [--full-json]
                    (a (scheme x app) grid on the sweep engine; prints the
                     deterministic cells JSON on one line)
  trace_tool scenario <file.wps> [--schemes S,...] [--jobs N]
                    [--exec per-event|batched] [--timeline] [--check-timeline]
                    (run a multi-tenant churn scenario under each scheme and
                     print the one-line report JSON; --timeline appends the
                     per-scheme tenant event JSONL, --check-timeline validates
                     it in-process first)
  trace_tool bench-check --baseline <BENCH_*.json>... --fresh-dir <dir>
                    [--max-regress R]
                    (compare each committed baseline's \"gate\" metrics against
                     the same-named fresh report in <dir>; exits non-zero if any
                     metric fell more than R, default 0.25, below baseline)
  trace_tool obs <app|file> [--scheme S] [--classification none|manual|auto]
                    [--warmup N] [--measure N] [--sixteen-core]
                    [--sample-every N] [--obs-out <file>]
                    (run with observability probes attached and emit the JSONL
                     timeline: pool occupancy, reconfigurations, registry
                     snapshot; stdout unless --obs-out)
  trace_tool serve  [--socket P] [--cache-dir D] [--state-dir D] [--workers N] [--queue N]
                    [--timeout-ms T]
                    (run the resident daemon; SIGINT, SIGTERM, or a shutdown
                     request stops it gracefully; --timeout-ms cancels any job
                     whose wall clock blows the budget with a typed error)
  trace_tool serve-bench [--out F] [--clients C] [--requests N] [--cold N]
                    (measure warm-daemon vs cold-process throughput and write
                     the BENCH_serve.json gate report)
  trace_tool tenant-bench [--out F] [--scenario <file.wps>] [--jobs N]
                    (run the bundled smoke scenario under the default scheme
                     set, measure scenario events/s, and write the
                     BENCH_tenant.json gate report)
  trace_tool status|metrics|shutdown --connect <sock>
  trace_tool cancel <job> --connect <sock>

Work subcommands (record, replay, profile, sweep, scenario, obs)
accept --connect <sock> to run on a `trace_tool serve` daemon instead
of locally; stdout is byte-identical either way. A daemon that is
shutting down mid-conversation maps to exit code 1 (retryable), every
other error to 2. WP_FAULT=<point>[@N][=ms][,...]:<seed> arms the
deterministic fault-injection layer (see the wp-fault crate docs).

schemes: LRU, DRRIP, IdealSPD, Awasthi, Jigsaw, Jigsaw-NoBypass,
         Whirlpool, Whirlpool-NoBypass, Memshare
";

/// Pulls `--connect <sock>` (anywhere in the argv) out of the argument
/// list, so neither the offline ops nor the wire argv ever see it.
fn strip_connect(argv: Vec<String>) -> Result<(Option<PathBuf>, Vec<String>), String> {
    let mut out = Vec::with_capacity(argv.len());
    let mut connect = None;
    let mut it = argv.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--connect" {
            let sock = it.next().ok_or("--connect needs a socket path")?;
            if connect.replace(PathBuf::from(sock)).is_some() {
                return Err("--connect given twice".into());
            }
        } else {
            out.push(arg);
        }
    }
    Ok((connect, out))
}

trait IntoRequest {
    fn into_request(self, rest: &[String]) -> Request;
}

impl IntoRequest for ExpOp {
    fn into_request(self, rest: &[String]) -> Request {
        Request::Experiment {
            op: self,
            argv: rest.to_vec(),
        }
    }
}

/// Runs a work verb: locally through the ops layer, or — with
/// `--connect` — on the daemon. Both paths print the same lines.
fn run_op(connect: Option<PathBuf>, req: Request) -> Result<(), String> {
    let lines = match connect {
        None => ops::run_request(&req, &OpCtx::offline())?,
        Some(sock) => connect_retrying(&sock)?.run(&req)?.lines,
    };
    // The one println! both modes share — the byte-identity choke point.
    for line in lines {
        println!("{line}");
    }
    Ok(())
}

fn local_only(connect: Option<PathBuf>, sub: &str) -> Result<(), String> {
    match connect {
        Some(_) => Err(format!("{sub} runs locally; drop --connect")),
        None => Ok(()),
    }
}

fn require_connect(connect: Option<PathBuf>, sub: &str) -> Result<PathBuf, String> {
    connect.ok_or_else(|| format!("{sub} needs --connect <sock> (a running daemon)"))
}

/// Every client-mode path connects through here: a few retries with
/// capped jittered backoff smooth over a daemon that is still binding
/// its socket. The jitter seed is the pid, so a fleet of clients
/// hitting one dead socket spreads out instead of stampeding.
fn connect_retrying(sock: &Path) -> Result<Client, String> {
    Client::connect_with_retry(sock, 3, u64::from(std::process::id()))
}

/// `status`/`metrics`/`shutdown`: one request, one reply frame printed.
fn sync_verb(connect: Option<PathBuf>, req: Request, rest: &[String]) -> Result<(), String> {
    if !rest.is_empty() {
        return Err(format!("{} takes no arguments", req.verb()));
    }
    let sock = require_connect(connect, &req.verb())?;
    let frame = connect_retrying(&sock)?.call(&req)?;
    println!("{frame}");
    Ok(())
}

fn cmd_cancel(connect: Option<PathBuf>, rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest, &[], &[])?;
    let [job] = args.positional[..] else {
        return Err("cancel takes exactly one job id".into());
    };
    let job: u64 = job
        .parse()
        .map_err(|_| format!("job id must be an integer, got '{job}'"))?;
    let sock = require_connect(connect, "cancel")?;
    let frame = connect_retrying(&sock)?.call(&Request::Cancel { job })?;
    println!("{frame}");
    Ok(())
}

/// `serve`: bind and run the daemon in the foreground.
fn cmd_serve(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(
        rest,
        &[
            "--socket",
            "--cache-dir",
            "--state-dir",
            "--workers",
            "--queue",
            "--timeout-ms",
        ],
        &[],
    )?;
    if !args.positional.is_empty() {
        return Err(format!(
            "serve takes no positional arguments (got '{}')",
            args.positional[0]
        ));
    }
    let mut config = ServeConfig::new(
        args.value("--socket")
            .map_or_else(|| PathBuf::from("target/wp-serve/wp.sock"), PathBuf::from),
    );
    if let Some(dir) = args.value("--cache-dir") {
        config.cache_dir = PathBuf::from(dir);
    }
    if let Some(dir) = args.value("--state-dir") {
        config.state_dir = PathBuf::from(dir);
    }
    if let Some(n) = args.number("--workers")? {
        config.workers = n.max(1) as usize;
    }
    if let Some(n) = args.number("--queue")? {
        config.queue_capacity = n.max(1) as usize;
    }
    if let Some(ms) = args.number("--timeout-ms")? {
        config.job_timeout_ms = Some(ms.max(1));
    }
    Server::bind(&config)?.run()
}

/// `serve-bench`: the scaling proof behind `BENCH_serve.json`.
///
/// Records one small trace, then measures the same `profile --json`
/// request two ways: *cold* — a fresh `trace_tool` process per request
/// (what every invocation cost before the daemon existed) — and *warm* —
/// C client connections saturating an in-process daemon whose curve memo
/// holds the answer after the first computation. The report's `gate`
/// object carries the warm/cold throughput ratio (`serve_speedup`) and
/// the absolute warm requests/s; `bench-check` enforces both in CI.
fn cmd_serve_bench(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest, &["--out", "--clients", "--requests", "--cold"], &[])?;
    if !args.positional.is_empty() {
        return Err(format!(
            "serve-bench takes no positional arguments (got '{}')",
            args.positional[0]
        ));
    }
    let out = args
        .value("--out")
        .unwrap_or("BENCH_serve.json")
        .to_string();
    let clients = args.number("--clients")?.unwrap_or(4).max(1) as usize;
    let requests = args.number("--requests")?.unwrap_or(50).max(1) as usize;
    let cold_runs = args.number("--cold")?.unwrap_or(5).max(1) as usize;

    let base = std::env::temp_dir().join(format!("wp-serve-bench-{}", std::process::id()));
    std::fs::create_dir_all(&base).map_err(|e| format!("cannot create {}: {e}", base.display()))?;
    let trace = base.join("bench.wpt");
    let record_argv: Vec<String> = [
        "mcf",
        "--out",
        trace.to_str().expect("temp paths are utf-8"),
        "--warmup",
        "20000",
        "--measure",
        "120000",
    ]
    .map(str::to_string)
    .to_vec();
    eprintln!("serve-bench: recording the probe trace...");
    ops::record(&record_argv, &OpCtx::offline())?;
    let profile_argv: Vec<String> = [
        trace.to_str().expect("temp paths are utf-8"),
        "--sample-rate",
        "0.1",
        "--s-max",
        "512",
        "--json",
    ]
    .map(str::to_string)
    .to_vec();

    // Cold baseline: a fresh process per request, the pre-daemon cost.
    let exe = std::env::current_exe().map_err(|e| format!("cannot find own binary: {e}"))?;
    eprintln!("serve-bench: {cold_runs} cold process-per-request runs...");
    let cold_start = std::time::Instant::now();
    for _ in 0..cold_runs {
        let status = std::process::Command::new(&exe)
            .arg("profile")
            .args(&profile_argv)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .status()
            .map_err(|e| format!("cannot spawn cold baseline process: {e}"))?;
        if !status.success() {
            return Err(format!("cold baseline run failed with {status}"));
        }
    }
    let cold_secs = cold_start.elapsed().as_secs_f64().max(1e-9);
    let cold_rps = cold_runs as f64 / cold_secs;

    // Warm: an in-process daemon saturated by C connections x N requests.
    let socket = base.join("bench.sock");
    let mut config = ServeConfig::new(&socket);
    config.cache_dir = base.join("cache");
    config.state_dir = base.join("state");
    config.workers = clients.min(4);
    let server = Server::bind(&config)?;
    let shutdown = server.shutdown_flag();
    let daemon = std::thread::spawn(move || server.run());
    // First request pays the one real profile computation so the
    // measured section is the steady (memoized) state the daemon exists
    // to provide.
    let warm_req = Request::Profile {
        argv: profile_argv.clone(),
    };
    Client::connect(&socket)?.run(&warm_req)?;
    eprintln!("serve-bench: {clients} clients x {requests} warm requests...");
    let warm_start = std::time::Instant::now();
    let mut latencies_us: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let req = warm_req.clone();
                let socket = &socket;
                scope.spawn(move || -> Result<Vec<u64>, String> {
                    let mut client = Client::connect(socket)?;
                    let mut lat = Vec::with_capacity(requests);
                    for _ in 0..requests {
                        let t = std::time::Instant::now();
                        client.run(&req)?;
                        lat.push(t.elapsed().as_micros() as u64);
                    }
                    Ok(lat)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bench client thread panicked"))
            .collect::<Result<Vec<_>, String>>()
    })?
    .into_iter()
    .flatten()
    .collect();
    let warm_secs = warm_start.elapsed().as_secs_f64().max(1e-9);
    let total_requests = clients * requests;
    let warm_rps = total_requests as f64 / warm_secs;
    latencies_us.sort_unstable();
    let pct = |p: f64| latencies_us[((latencies_us.len() - 1) as f64 * p) as usize];
    shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
    daemon.join().expect("daemon thread panicked")?;
    let _ = std::fs::remove_dir_all(&base);

    let speedup = warm_rps / cold_rps.max(1e-9);
    let report = format!(
        "{{\"bench\":\"serve\",\"clients\":{clients},\"requests_per_client\":{requests},\
         \"cold_runs\":{cold_runs},\
         \"cold\":{{\"requests_per_sec\":{cold_rps:.2}}},\
         \"warm\":{{\"requests\":{total_requests},\"requests_per_sec\":{warm_rps:.2},\
         \"p50_us\":{},\"p99_us\":{}}},\
         \"gate\":{{\"serve_speedup\":{speedup:.2},\"warm_requests_per_sec\":{warm_rps:.2}}}}}",
        pct(0.50),
        pct(0.99),
    );
    std::fs::write(&out, format!("{report}\n")).map_err(|e| format!("cannot write {out}: {e}"))?;
    eprintln!(
        "serve-bench: cold {cold_rps:.1} req/s, warm {warm_rps:.1} req/s \
         ({speedup:.1}x, p99 {} us) -> {out}",
        pct(0.99),
    );
    println!("{report}");
    Ok(())
}

/// `tenant-bench`: the scenario-engine perf gate behind `BENCH_tenant.json`.
///
/// Runs the bundled smoke scenario offline under the same default scheme
/// set the `scenario` verb uses, measures wall-clock scenario events/s
/// (arrivals, departures, admissions, waits, violations processed per
/// second), and records each scheme's weighted speedup. The report's
/// `gate` object carries the throughput plus the per-scheme speedups —
/// the latter are bit-deterministic, so any drop means the engine or a
/// scheme changed behaviour, not just got slower.
fn cmd_tenant_bench(rest: &[String]) -> Result<(), String> {
    use whirlpool_repro::harness::SchemeKind;

    let args = Args::parse(rest, &["--out", "--scenario", "--jobs"], &[])?;
    if !args.positional.is_empty() {
        return Err(format!(
            "tenant-bench takes no positional arguments (got '{}')",
            args.positional[0]
        ));
    }
    let out = args
        .value("--out")
        .unwrap_or("BENCH_tenant.json")
        .to_string();
    let path = args.value("--scenario").unwrap_or("scenarios/smoke.wps");
    let scenario = wp_tenant::Scenario::load(Path::new(path)).map_err(|e| e.to_string())?;
    let kinds = [
        SchemeKind::Whirlpool,
        SchemeKind::Memshare,
        SchemeKind::Jigsaw,
        SchemeKind::SNucaLru,
    ];
    let mut opts = wp_tenant::ScenarioOpts::default();
    if let Some(jobs) = args.number("--jobs")? {
        opts.jobs = Some(jobs.max(1) as usize);
    }
    eprintln!(
        "tenant-bench: running '{}' ({} tenants, {} epochs) under {} schemes...",
        scenario.name,
        scenario.tenants.len(),
        scenario.epochs,
        kinds.len(),
    );
    let start = std::time::Instant::now();
    let report = wp_tenant::run_scenario(&scenario, &kinds, &opts).map_err(|e| e.to_string())?;
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    let events: usize = report.schemes.iter().map(|s| s.events.len()).sum();
    let events_per_sec = events as f64 / secs;

    let mut gate = format!("\"scenario_events_per_sec\":{events_per_sec:.2}");
    let mut speedups = String::new();
    for s in &report.schemes {
        gate.push_str(&format!(
            ",\"weighted_speedup_{}\":{:.4}",
            s.scheme.label(),
            s.weighted_speedup
        ));
        if !speedups.is_empty() {
            speedups.push(',');
        }
        speedups.push_str(&format!(
            "{{\"scheme\":\"{}\",\"weighted_speedup\":{:.4},\"jain_fairness\":{:.4}}}",
            s.scheme.label(),
            s.weighted_speedup,
            s.jain_fairness
        ));
    }
    let report_json = format!(
        "{{\"bench\":\"tenant\",\"scenario\":\"{}\",\"tenants\":{},\"epochs\":{},\
         \"schemes\":[{speedups}],\
         \"events\":{events},\"secs\":{secs:.3},\
         \"gate\":{{{gate}}}}}",
        scenario.name,
        scenario.tenants.len(),
        scenario.epochs,
    );
    std::fs::write(&out, format!("{report_json}\n"))
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    eprintln!(
        "tenant-bench: {events} events in {secs:.2}s ({events_per_sec:.1} events/s) -> {out}"
    );
    println!("{report_json}");
    Ok(())
}

fn cmd_info(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest, &[], &[])?;
    let [file] = args.positional[..] else {
        return Err("info takes exactly one trace file".into());
    };
    let info = TraceInfo::scan(Path::new(file)).map_err(|e| e.to_string())?;
    println!("{file}");
    println!(
        "  {} bytes, {} chunks, {} streams, {} events total",
        info.file_bytes,
        info.chunks,
        info.streams.len(),
        info.total_events(),
    );
    println!(
        "  naive fixed-width size {} bytes -> compression {:.2}x ({:.2} bytes/event)",
        info.naive_bytes(),
        info.compression_ratio(),
        if info.total_events() == 0 {
            0.0
        } else {
            info.file_bytes as f64 / info.total_events() as f64
        },
    );
    for s in &info.streams {
        println!(
            "  stream {} '{}': {} events, {} instructions, {} writes",
            s.meta.id, s.meta.name, s.events, s.instructions, s.writes
        );
        if let Some((lo, hi)) = s.line_span {
            println!("    lines {lo:#x}..{hi:#x}");
        }
        for (i, p) in s.meta.pools.iter().enumerate() {
            println!(
                "    pool {i} '{}': {} KB, {} pages{}",
                p.name,
                p.bytes / 1024,
                p.pages.len(),
                p.pool
                    .map(|id| format!(", allocator pool {id}"))
                    .unwrap_or_default(),
            );
        }
    }
    Ok(())
}

fn cmd_dump(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest, &["--limit", "--stream"], &[])?;
    let [file] = args.positional[..] else {
        return Err("dump takes exactly one trace file".into());
    };
    let limit = args.number("--limit")?.unwrap_or(64);
    let only = args.number("--stream")?;
    let mut reader = TraceReader::open(Path::new(file)).map_err(|e| e.to_string())?;
    println!(
        "{:>10} {:>6} {:>8} {:>14} {:>3} {:>5}",
        "seq", "stream", "gap", "line", "rw", "pool"
    );
    let mut seq = 0u64;
    let mut shown = 0u64;
    loop {
        match reader.next_record() {
            Ok(Some((sid, rec))) => {
                seq += 1;
                if only.is_some_and(|k| u64::from(sid) != k) {
                    continue;
                }
                if shown >= limit {
                    println!("... (truncated at --limit {limit})");
                    return Ok(());
                }
                println!(
                    "{:>10} {:>6} {:>8} {:>#14x} {:>3} {:>5}",
                    seq - 1,
                    sid,
                    rec.gap_instrs,
                    rec.line.0,
                    if rec.is_write { "w" } else { "r" },
                    rec.pool
                        .map(|p| p.to_string())
                        .unwrap_or_else(|| "-".into()),
                );
                shown += 1;
            }
            Ok(None) => return Ok(()),
            Err(e) => return Err(e.to_string()),
        }
    }
}

/// `bench-check`: the CI perf gate. Each committed `BENCH_*.json`
/// baseline is paired by file name with a freshly measured report in
/// `--fresh-dir`; every numeric metric in the baseline's `"gate"` object
/// (all bigger-is-better throughputs/speedups) must stay above
/// `baseline * (1 - max_regress)`.
fn cmd_bench_check(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest, &["--baseline", "--fresh-dir", "--max-regress"], &[])?;
    if !args.positional.is_empty() {
        return Err(format!(
            "bench-check takes no positional arguments (got '{}')",
            args.positional[0]
        ));
    }
    let baselines = args.values("--baseline");
    if baselines.is_empty() {
        return Err("bench-check needs at least one --baseline <BENCH_*.json>".into());
    }
    let fresh_dir = PathBuf::from(
        args.value("--fresh-dir")
            .ok_or("bench-check needs --fresh-dir <dir>")?,
    );
    let max_regress = match args.value("--max-regress") {
        None => 0.25,
        Some(v) => {
            let r: f64 = v
                .parse()
                .map_err(|_| format!("--max-regress expects a number, got '{v}'"))?;
            if !(0.0..1.0).contains(&r) {
                return Err(format!("--max-regress must be in [0, 1), got {r}"));
            }
            r
        }
    };
    let mut regressions = 0usize;
    for baseline in baselines {
        let baseline = Path::new(baseline);
        let name = baseline
            .file_name()
            .ok_or_else(|| format!("--baseline '{}' has no file name", baseline.display()))?;
        let fresh = fresh_dir.join(name);
        let comparisons = whirlpool_repro::bench_check::check_files(baseline, &fresh, max_regress)?;
        println!("{}:", name.to_string_lossy());
        for c in &comparisons {
            println!("  {c}");
            regressions += usize::from(c.regressed);
        }
    }
    if regressions > 0 {
        return Err(format!(
            "{regressions} gate metric(s) regressed more than {:.0}% vs committed baselines",
            max_regress * 100.0
        ));
    }
    eprintln!(
        "bench-check: all gate metrics within {:.0}%",
        max_regress * 100.0
    );
    Ok(())
}
