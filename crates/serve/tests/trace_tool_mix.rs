//! Multi-core capture ergonomics: `trace_tool replay --stream K` and
//! `--mix` drive real multi-stream `.wpt` captures, and a mix replay with
//! the recording's budgets reproduces the live run bit for bit.

use std::process::Command;

use whirlpool_repro::harness::{Experiment, SchemeKind};

const MEASURE: u64 = 300_000;

fn trace_tool() -> Command {
    Command::new(env!("CARGO_BIN_EXE_trace_tool"))
}

fn capture_mix(tag: &str) -> (std::path::PathBuf, String) {
    let path = std::env::temp_dir().join(format!("wp-tt-mix-{}-{tag}.wpt", std::process::id()));
    let live = Experiment::mix(SchemeKind::Whirlpool, &["delaunay", "mcf"])
        .measure(MEASURE)
        .capture_to(&path)
        .run()
        .expect("mix capture");
    (path, live.to_json())
}

#[test]
fn mix_replay_reproduces_the_live_mix_bit_for_bit() {
    let (path, live_json) = capture_mix("roundtrip");
    let out = trace_tool()
        .args([
            "replay",
            path.to_str().unwrap(),
            "--mix",
            "--scheme",
            "Whirlpool",
            "--warmup",
            "6000000", // MIX_WARMUP_INSTRS
            "--measure",
            &MEASURE.to_string(),
        ])
        .output()
        .expect("run trace_tool");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let replay_json = String::from_utf8(out.stdout).expect("utf8");
    assert_eq!(replay_json.trim(), live_json, "mix replay diverged");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn stream_flag_selects_one_core_of_a_mix_capture() {
    let (path, _) = capture_mix("stream");
    // Stream 1 is mcf's core: replaying it alone works...
    let out = trace_tool()
        .args([
            "replay",
            path.to_str().unwrap(),
            "--stream",
            "1",
            "--scheme",
            "LRU",
            "--measure",
            "200000",
        ])
        .output()
        .expect("run trace_tool");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = String::from_utf8(out.stdout).expect("utf8");
    assert!(json.contains("\"scheme\":\"S-NUCA (LRU)\""), "{json}");
    // ...and differs from stream 0 (different app, different stats).
    let out0 = trace_tool()
        .args([
            "replay",
            path.to_str().unwrap(),
            "--stream",
            "0",
            "--scheme",
            "LRU",
            "--measure",
            "200000",
        ])
        .output()
        .expect("run trace_tool");
    assert_ne!(json, String::from_utf8(out0.stdout).expect("utf8"));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn out_of_range_stream_is_a_clean_error() {
    let (path, _) = capture_mix("range");
    let out = trace_tool()
        .args(["replay", path.to_str().unwrap(), "--stream", "9"])
        .output()
        .expect("run trace_tool");
    assert!(!out.status.success(), "stream 9 must fail");
    let err = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(err.contains("stream 9"), "unhelpful error: {err}");
    // --mix and --stream are mutually exclusive.
    let out = trace_tool()
        .args(["replay", path.to_str().unwrap(), "--mix", "--stream", "1"])
        .output()
        .expect("run trace_tool");
    assert!(!out.status.success());
    std::fs::remove_file(&path).unwrap();
}
