//! The `trace_tool` CLI error surface: every misuse exits non-zero with
//! a one-line message (did-you-mean suggestions included), never a
//! panic or a usage dump. The typed-`HarnessError` API counterparts
//! live in the root crate's `tests/harness_errors.rs`.

use std::process::Command;

use whirlpool_repro::harness::{RunSpec, SchemeKind};

fn temp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("wp-cli-errors-{}-{tag}.wpt", std::process::id()))
}

fn capture_small(tag: &str) -> std::path::PathBuf {
    let path = temp(tag);
    RunSpec::new(SchemeKind::SNucaLru, "delaunay")
        .warmup(50_000)
        .measure(100_000)
        .capture_to(&path)
        .run()
        .expect("capture");
    path
}

fn trace_tool(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_trace_tool"))
        .args(args)
        .output()
        .expect("run trace_tool");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn cli_unknown_app_exits_nonzero_with_suggestion() {
    let (ok, err) = trace_tool(&["record", "delauny", "--out", "/tmp/never.wpt"]);
    assert!(!ok, "must exit non-zero");
    assert!(err.contains("unknown app 'delauny'"), "{err}");
    assert!(err.contains("did you mean 'delaunay'"), "{err}");
}

#[test]
fn cli_unknown_scheme_exits_nonzero_with_suggestion() {
    let (ok, err) = trace_tool(&[
        "record",
        "delaunay",
        "--scheme",
        "whirlpol",
        "--out",
        "/tmp/never.wpt",
    ]);
    assert!(!ok, "must exit non-zero");
    assert!(err.contains("unknown scheme 'whirlpol'"), "{err}");
    assert!(err.contains("did you mean 'Whirlpool'"), "{err}");
}

#[test]
fn cli_bad_trace_exits_nonzero_one_line() {
    let (ok, err) = trace_tool(&["replay", "/nonexistent/x.wpt"]);
    assert!(!ok, "must exit non-zero");
    let lines: Vec<&str> = err.lines().filter(|l| !l.is_empty()).collect();
    assert_eq!(lines.len(), 1, "one-line message, no usage dump: {err}");
    assert!(lines[0].starts_with("trace_tool:"), "{err}");
}

#[test]
fn cli_colliding_trace_mix_exits_nonzero() {
    let path = capture_small("cli-collide");
    let uri = format!("trace:{}", path.display());
    let (ok, err) = trace_tool(&["record", &uri, &uri, "--out", "/tmp/never.wpt"]);
    assert!(!ok, "must exit non-zero");
    assert!(err.contains("overlap"), "{err}");
    std::fs::remove_file(&path).unwrap();
}

fn temp_wps(tag: &str, body: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("wp-cli-errors-{}-{tag}.wps", std::process::id()));
    std::fs::write(&path, body).expect("write scenario");
    path
}

#[test]
fn cli_malformed_scenario_exits_nonzero_one_line() {
    let path = temp_wps("truncated", "{\"name\":\"x\",\"cores\":4");
    let (ok, err) = trace_tool(&["scenario", path.to_str().unwrap()]);
    assert!(!ok, "must exit non-zero");
    let lines: Vec<&str> = err.lines().filter(|l| !l.is_empty()).collect();
    assert_eq!(lines.len(), 1, "one-line message, no usage dump: {err}");
    assert!(lines[0].starts_with("trace_tool: scenario error:"), "{err}");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn cli_scenario_unknown_app_keeps_the_suggestion_contract() {
    let path = temp_wps(
        "badapp",
        r#"{"name":"x","seed":1,"cores":4,"epochs":2,"epoch_instrs":1000,
            "tenants":[{"name":"a","app":"delauny"}]}"#,
    );
    let (ok, err) = trace_tool(&["scenario", path.to_str().unwrap()]);
    assert!(!ok, "must exit non-zero");
    assert!(err.contains("unknown app 'delauny'"), "{err}");
    assert!(err.contains("did you mean 'delaunay'"), "{err}");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn cli_missing_scenario_file_exits_nonzero_one_line() {
    let (ok, err) = trace_tool(&["scenario", "/nonexistent/x.wps"]);
    assert!(!ok, "must exit non-zero");
    let lines: Vec<&str> = err.lines().filter(|l| !l.is_empty()).collect();
    assert_eq!(lines.len(), 1, "one-line message: {err}");
    assert!(lines[0].contains("cannot read scenario"), "{err}");
}

#[test]
fn cli_scenario_unknown_scheme_exits_nonzero_with_suggestion() {
    let path = temp_wps(
        "badscheme",
        r#"{"name":"x","seed":1,"cores":4,"epochs":2,"epoch_instrs":1000,
            "tenants":[{"name":"a","app":"mcf"}]}"#,
    );
    let (ok, err) = trace_tool(&["scenario", path.to_str().unwrap(), "--schemes", "Memshar"]);
    assert!(!ok, "must exit non-zero");
    assert!(err.contains("unknown scheme 'Memshar'"), "{err}");
    assert!(err.contains("did you mean 'Memshare'"), "{err}");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn cli_connect_without_daemon_exits_nonzero_with_hint() {
    let (ok, err) = trace_tool(&[
        "replay",
        "/tmp/never.wpt",
        "--connect",
        "/tmp/wp-no-such-daemon.sock",
    ]);
    assert!(!ok, "must exit non-zero");
    assert!(err.contains("cannot connect"), "{err}");
    assert!(err.contains("trace_tool serve"), "{err}");
}

#[test]
fn cli_local_only_subcommands_reject_connect() {
    let (ok, err) = trace_tool(&["info", "/tmp/never.wpt", "--connect", "/tmp/x.sock"]);
    assert!(!ok, "must exit non-zero");
    assert!(err.contains("runs locally"), "{err}");
}

#[test]
fn cli_sync_verbs_require_connect() {
    let (ok, err) = trace_tool(&["status"]);
    assert!(!ok, "must exit non-zero");
    assert!(err.contains("--connect"), "{err}");
}
