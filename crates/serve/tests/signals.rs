//! Container-style shutdown: SIGTERM must land as the same graceful
//! drain flag as Ctrl-C's SIGINT.
//!
//! The test raises real signals at its own process (after installing
//! the handlers — order matters, or the default action kills the test
//! runner), so it exercises the actual `signal(2)` registration, not a
//! mock.

use std::time::{Duration, Instant};

use wp_serve::signal::{install_shutdown_flags, reset_shutdown_flag, shutdown_signal_received};

/// Polls the flag until it flips or the deadline passes.
fn flag_within(budget: Duration) -> bool {
    let deadline = Instant::now() + budget;
    while Instant::now() < deadline {
        if shutdown_signal_received() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    shutdown_signal_received()
}

fn raise(sig: &str) {
    let status = std::process::Command::new("kill")
        .args([sig, &std::process::id().to_string()])
        .status()
        .expect("kill(1) must be runnable");
    assert!(status.success(), "kill {sig} failed");
}

#[test]
fn sigterm_and_sigint_both_set_the_shutdown_flag() {
    // Install FIRST: an unhandled SIGTERM would kill the test binary.
    install_shutdown_flags();
    reset_shutdown_flag();
    assert!(!shutdown_signal_received());

    raise("-TERM");
    assert!(
        flag_within(Duration::from_secs(5)),
        "SIGTERM never set the shutdown flag"
    );

    // The flag resets (tests re-enter accept loops in one process) and
    // SIGINT lands through the same handler.
    reset_shutdown_flag();
    assert!(!shutdown_signal_received());
    raise("-INT");
    assert!(
        flag_within(Duration::from_secs(5)),
        "SIGINT never set the shutdown flag"
    );
    reset_shutdown_flag();
}
