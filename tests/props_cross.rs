//! Cross-crate property tests: system invariants under randomized access
//! streams and reconfiguration sequences.

use proptest::prelude::*;
use wp_jigsaw::{NucaConfig, NucaRuntime, Vtb};
use wp_mem::LineAddr;
use wp_noc::{BankId, CoreId};
use wp_sim::{AccessContext, LlcOutcome, LlcScheme, SystemConfig, Uncore};

fn sys() -> SystemConfig {
    let mut s = SystemConfig::four_core();
    s.reconfig_interval_cycles = 200_000;
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every access is served exactly once (hit, miss, or bypass), from
    /// any interleaving of cores, lines, and reconfigurations.
    #[test]
    fn accesses_always_served(
        ops in proptest::collection::vec((0u16..4, 0u64..20_000, proptest::bool::weighted(0.01)), 200..800)
    ) {
        let s = sys();
        let mut rt = NucaRuntime::new(s.clone(), NucaConfig::for_system(&s, false, true), "J");
        let mut u = Uncore::new(s);
        for c in 0..4 {
            rt.attach_core(CoreId(c), &[]);
        }
        let (mut hits, mut misses, mut bypasses) = (0u64, 0u64, 0u64);
        let mut instrs = 0u64;
        for (core, line, reconfig) in ops {
            if reconfig {
                u.interval_instructions[core as usize] = instrs.max(1);
                rt.reconfigure(&mut u);
                instrs = 0;
                continue;
            }
            instrs += 20;
            let r = rt.access(
                AccessContext { core: CoreId(core), line: LineAddr(line), is_write: false },
                &mut u,
            );
            match r.outcome {
                LlcOutcome::Hit => hits += 1,
                LlcOutcome::Miss => misses += 1,
                LlcOutcome::Bypass => bypasses += 1,
            }
            prop_assert!(r.latency > 0.0, "every access costs time");
        }
        // Per-VC counters agree with the outcome totals.
        let vc_total: u64 = rt.vcs().iter().map(|v| v.hits + v.misses + v.bypasses).sum();
        prop_assert_eq!(vc_total, hits + misses + bypasses);
    }

    /// After any sequence of rebalances, a VTB stays proportional to its
    /// latest shares and never returns a zero-share bank.
    #[test]
    fn vtb_rebalance_invariants(
        steps in proptest::collection::vec(
            proptest::collection::vec(0u64..100, 3), 1..12)
    ) {
        let mut vtb = Vtb::degenerate(BankId(0));
        let mut last: Option<Vec<(BankId, u64)>> = None;
        for shares in steps {
            let shares: Vec<(BankId, u64)> = shares
                .iter()
                .enumerate()
                .map(|(i, &s)| (BankId(i as u16), s))
                .collect();
            if shares.iter().all(|&(_, s)| s == 0) {
                continue;
            }
            vtb.rebalance(&shares);
            last = Some(shares);
        }
        if let Some(shares) = last {
            let total: u64 = shares.iter().map(|&(_, s)| s).sum();
            for &(bank, s) in &shares {
                let frac = vtb.share_of(bank);
                let expect = s as f64 / total as f64;
                prop_assert!(
                    (frac - expect).abs() < 0.05,
                    "bank {bank:?}: got {frac}, expected {expect}"
                );
            }
        }
    }

    /// Bank quotas never exceed the bank budget regardless of how
    /// reconfiguration shuffles VCs (conservation of capacity).
    #[test]
    fn quotas_conserve_capacity(
        rounds in proptest::collection::vec(
            proptest::collection::vec(0u64..60_000, 30..120), 2..5)
    ) {
        let s = sys();
        let lines_per_bank = s.lines_per_bank() as usize;
        let mut rt = NucaRuntime::new(s.clone(), NucaConfig::for_system(&s, false, true), "J");
        let mut u = Uncore::new(s);
        rt.attach_core(CoreId(0), &[]);
        rt.attach_core(CoreId(2), &[]);
        for (ri, round) in rounds.iter().enumerate() {
            for (i, &line) in round.iter().enumerate() {
                let core = if i % 3 == 0 { 2 } else { 0 };
                rt.access(
                    AccessContext { core: CoreId(core), line: LineAddr(line), is_write: false },
                    &mut u,
                );
            }
            u.interval_instructions[0] = 1 + 50 * round.len() as u64;
            u.interval_instructions[2] = 1 + 20 * round.len() as u64;
            rt.reconfigure(&mut u);
            // Invariant: per-VC shares within each bank sum <= bank size.
            let mut per_bank = std::collections::HashMap::new();
            for vc in rt.vcs() {
                for &(b, l) in &vc.shares {
                    *per_bank.entry(b).or_insert(0u64) += l;
                }
            }
            for (b, total) in per_bank {
                prop_assert!(
                    total as usize <= lines_per_bank,
                    "round {ri}: bank {b:?} oversubscribed ({total})"
                );
            }
        }
    }
}
