//! Qualitative paper claims verified end to end on small, fast models:
//! who wins, and in the right direction — the shape the reproduction
//! must preserve (EXPERIMENTS.md records the full-scale numbers).

use std::collections::HashMap;

use whirlpool_repro::harness::{four_core_config, Classification, Experiment, SchemeKind};
use wp_mem::{CallpointId, PageId};
use wp_paws::SchedPolicy;
use wp_sim::RunSummary;
use wp_whirltool::{cluster, profile, ProfilerConfig};
use wp_workloads::parallel::{ParallelSpec, RemoteKind};
use wp_workloads::{AppModel, AppSpec, Pattern, PoolSpec};

/// mis in miniature: cache-friendly vertices + streaming edges.
fn small_mis() -> AppSpec {
    AppSpec::steady(
        "small-mis",
        vec![
            PoolSpec::new("vertices", 1024 * 1024, Pattern::Uniform),
            PoolSpec::new("edges", 24 * 1024 * 1024, Pattern::Sweep),
        ],
        &[45.0, 90.0],
        135.0,
        11,
    )
}

fn run(kind: SchemeKind, spec: AppSpec, manual: bool, instrs: u64) -> RunSummary {
    let mut sys = four_core_config();
    sys.reconfig_interval_cycles = 400_000;
    let model = AppModel::new(spec);
    let pools = if manual {
        model.descriptors_manual()
    } else {
        Vec::new()
    };
    Experiment::bundles(kind, vec![model.bundle(pools)])
        .system(sys)
        .warmup(instrs / 2)
        .measure(instrs)
        .run()
        .expect("bespoke-model run")
}

#[test]
fn whirlpool_beats_jigsaw_and_snuca_on_mis_shape() {
    let instrs = 3_000_000;
    let snuca = run(SchemeKind::SNucaLru, small_mis(), false, instrs);
    let jig = run(SchemeKind::Jigsaw, small_mis(), false, instrs);
    let wp = run(SchemeKind::Whirlpool, small_mis(), true, instrs);
    // Ordering: Whirlpool <= Jigsaw <= S-NUCA in cycles (Fig. 10).
    assert!(
        wp.cores[0].cycles < jig.cores[0].cycles,
        "Whirlpool {} vs Jigsaw {}",
        wp.cores[0].cycles,
        jig.cores[0].cycles
    );
    assert!(jig.cores[0].cycles < snuca.cores[0].cycles * 1.05);
    // Whirlpool bypasses the streaming edges.
    assert!(
        wp.cores[0].llc_bpki() > 10.0,
        "edges should bypass, got {:.1} BPKI",
        wp.cores[0].llc_bpki()
    );
}

#[test]
fn bypassing_helps_whirlpool_more_than_jigsaw() {
    // Fig. 21's ablation: without bypassing, Whirlpool loses more than
    // Jigsaw (1.2% vs 0.2% in the paper) because only Whirlpool can
    // isolate no-reuse pools.
    let instrs = 3_000_000;
    let wp = run(SchemeKind::Whirlpool, small_mis(), true, instrs);
    let wp_nb = run(SchemeKind::WhirlpoolNoBypass, small_mis(), true, instrs);
    assert!(
        wp.cores[0].cycles <= wp_nb.cores[0].cycles * 1.005,
        "bypassing must not hurt Whirlpool"
    );
    assert!(wp.energy_per_ki() < wp_nb.energy_per_ki());
}

#[test]
fn whirltool_recovers_the_manual_classification() {
    // WhirlTool's clustering on the mini-mis groups the vertices callpoint
    // apart from the edges callpoint (the Sec. 4.4 "matches manual" claim,
    // structurally).
    let model = AppModel::new(small_mis());
    let page_map: HashMap<PageId, CallpointId> = model
        .callpoints()
        .iter()
        .flat_map(|(cp, _, pages)| pages.iter().map(move |p| (*p, *cp)))
        .collect();
    let mut trace = model.trace();
    let data = profile(
        &mut trace,
        &page_map,
        ProfilerConfig {
            interval_instrs: 500_000,
            total_instrs: 3_000_000,
            granule_lines: 256,
            curve_points: 101,
            sample: None,
        },
    );
    let tree = cluster(&data, 100);
    let assignment = tree.assignment(2);
    let by_pool: Vec<usize> = model
        .callpoints()
        .iter()
        .map(|(cp, _, _)| assignment[cp])
        .collect();
    // vertices callpoint != edges callpoint cluster.
    assert_ne!(by_pool[0], by_pool[1], "pools must separate");
}

#[test]
fn awasthi_sticks_to_four_banks_idealspd_multi_lookups() {
    // The two baseline pathologies of Fig. 10.
    let instrs = 2_000_000;
    let aw = run(SchemeKind::Awasthi, small_mis(), false, instrs);
    let spd = run(SchemeKind::IdealSpd, small_mis(), false, instrs);
    // Awasthi: more misses than Jigsaw (stuck allocation).
    let jig = run(SchemeKind::Jigsaw, small_mis(), false, instrs);
    assert!(aw.cores[0].llc_mpki() > jig.cores[0].llc_mpki());
    // IdealSPD: highest bank energy (multi-level lookups).
    assert!(spd.energy.bank_nj > jig.energy.bank_nj);
}

#[test]
fn paws_with_whirlpool_wins_on_parallel_apps() {
    let spec = ParallelSpec {
        name: "cc-mini",
        partitions: 16,
        bytes_per_partition: 512 * 1024,
        pattern: Pattern::Uniform,
        rounds: 4,
        tasks_per_partition: 2,
        instrs_per_task: 60_000,
        accesses_per_task: 4_000,
        remote_frac: 0.35,
        remote_kind: RemoteKind::RandomCut,
        foreign_penalty: 1.5,
        duration_jitter: 0.4,
        seed: 5,
    };
    let mut sys = whirlpool_repro::harness::sixteen_core_config();
    sys.reconfig_interval_cycles = 400_000;

    let mut makespans = Vec::new();
    for (kind, policy, classify) in [
        (SchemeKind::Jigsaw, SchedPolicy::WorkStealing, false),
        (SchemeKind::Whirlpool, SchedPolicy::Paws, true),
    ] {
        let classification = if classify {
            Classification::Manual // → one pool per partition
        } else {
            Classification::None
        };
        let out = Experiment::parallel(kind, spec.clone(), policy)
            .system(sys.clone())
            .classification(classification)
            .seed(9)
            .run()
            .expect("parallel run");
        makespans.push(out.cores.iter().map(|c| c.cycles).fold(0.0, f64::max));
    }
    assert!(
        makespans[1] < makespans[0],
        "W+PaWS {} must beat Jigsaw+WS {}",
        makespans[1],
        makespans[0]
    );
}

#[test]
fn weighted_speedup_of_whirlpool_mixes_is_positive() {
    // Fig. 22 shape on one small 4-app mix.
    let mut sys = four_core_config();
    sys.reconfig_interval_cycles = 400_000;
    let apps = ["small-a", "small-b", "small-c", "small-d"];
    let specs: Vec<AppSpec> = (0..4)
        .map(|i| {
            AppSpec::steady(
                apps[i],
                vec![
                    PoolSpec::new("hot", 256 * 1024 * (i as u64 + 1), Pattern::Uniform),
                    PoolSpec::new("cold", 2 * 1024 * 1024, Pattern::Sweep),
                ],
                &[30.0, 20.0],
                50.0,
                i as u64,
            )
        })
        .collect();
    let run_all = |kind: SchemeKind, manual: bool| -> Vec<f64> {
        let bundles = specs
            .iter()
            .map(|spec| {
                let model = AppModel::new(spec.clone());
                let pools = if manual {
                    model.descriptors_manual()
                } else {
                    Vec::new()
                };
                model.bundle(pools)
            })
            .collect();
        let out = Experiment::bundles(kind, bundles)
            .system(sys.clone())
            .warmup(5_000_000)
            .measure(3_000_000)
            .run()
            .expect("mix of bespoke models");
        out.cores.iter().map(|c| c.ipc()).collect()
    };
    let jig = run_all(SchemeKind::Jigsaw, false);
    let wp = run_all(SchemeKind::Whirlpool, true);
    let ws = wp_workloads::mix::weighted_speedup(&wp, &jig);
    assert!(
        ws > 0.97,
        "Whirlpool should not lose on mixes: weighted speedup {ws:.3}"
    );
}
