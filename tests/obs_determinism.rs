//! Observability is free of observable effects: enabling the `wp-obs`
//! registry, spans, and timeline probes must not move a single bit of
//! any result, and the JSONL the probes emit must be machine-parseable.
//!
//! 1. **Bit identity**: for every Fig. 10 scheme, a run with the
//!    registry enabled *and* the timeline probe attached emits the same
//!    `RunSummary` JSON as a run with observability fully off.
//! 2. **JSONL round trip**: every line of an [`ObsReport`]'s export
//!    parses with the repo's own `bench_check` JSON parser and carries
//!    the documented schema fields.
//! 3. **External validation** (CI hook): with `WP_OBS_VALIDATE=<path>`,
//!    validate a JSONL file produced by `trace_tool obs --obs-out`.

use whirlpool_repro::bench_check::{parse, Json};
use whirlpool_repro::harness::{Experiment, SchemeKind};

const WARMUP: u64 = 100_000;
const MEASURE: u64 = 200_000;

fn run_summary(kind: SchemeKind, observe: bool) -> (String, Option<usize>) {
    let mut exp = Experiment::single(kind, "delaunay")
        .classification(kind.default_classification())
        .warmup(WARMUP)
        .measure(MEASURE);
    if observe {
        exp = exp.observe(wp_obs::ObsConfig::every(512));
    }
    let run = exp.run_full().expect("run");
    let samples = run.obs.as_ref().map(|r| r.timeline.len());
    (run.summary.to_json(), samples)
}

/// Fig. 10, twice per scheme: observability fully off, then registry on
/// with a fine-grained timeline probe attached. Summaries must agree to
/// the byte — the probes read scheme state, never steer it.
#[test]
fn results_are_bit_identical_with_observability_on_and_off() {
    for kind in SchemeKind::FIG10 {
        wp_obs::set_enabled(false);
        let (off, _) = run_summary(kind, false);
        wp_obs::set_enabled(true);
        let (on, samples) = run_summary(kind, true);
        wp_obs::set_enabled(false);
        assert_eq!(
            off,
            on,
            "{} diverged with observability enabled",
            kind.label()
        );
        // Every scheme gets a probe; only pooled schemes (Jigsaw /
        // Whirlpool families) have occupancy to report.
        let label = kind.label();
        let pooled = label.contains("Jigsaw") || label.contains("Whirlpool");
        assert!(samples.is_some(), "{label} ran without a probe attached");
        assert_eq!(
            samples.is_some_and(|n| n > 0),
            pooled,
            "{label}: unexpected timeline sample count {samples:?}"
        );
    }
}

/// Every JSONL line an [`ObsReport`] emits parses with the repo's
/// `bench_check` parser and carries its discriminant's schema fields.
#[test]
fn obs_jsonl_round_trips_through_the_bench_check_parser() {
    let run = Experiment::single(SchemeKind::Whirlpool, "delaunay")
        .classification(SchemeKind::Whirlpool.default_classification())
        .warmup(WARMUP)
        .measure(MEASURE)
        .observe(wp_obs::ObsConfig::every(256))
        .run_full()
        .expect("run");
    let report = run.obs.expect("observe() attaches a report");
    assert!(!report.timeline.is_empty(), "no pool samples collected");
    let jsonl = report.to_jsonl(&run.summary.scheme);
    validate_jsonl(&jsonl);
}

/// CI hook: `WP_OBS_VALIDATE=<path>` points this test at a JSONL file
/// written by `trace_tool obs --obs-out` and it enforces the same schema
/// contract. Without the variable the test is a no-op.
#[test]
fn validates_external_obs_jsonl_when_pointed_at_one() {
    let Ok(path) = std::env::var("WP_OBS_VALIDATE") else {
        return;
    };
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("WP_OBS_VALIDATE={path}: {e}"));
    assert!(!text.is_empty(), "{path} is empty");
    validate_jsonl(&text);
}

fn validate_jsonl(text: &str) {
    let mut counts = [0usize; 3]; // pool_sample, reconfig, metrics
    for (i, line) in text.lines().enumerate() {
        let v = parse(line).unwrap_or_else(|e| panic!("line {}: {e}\n{line}", i + 1));
        let ty = match v.get("type") {
            Some(Json::Str(s)) => s.clone(),
            other => panic!("line {}: bad \"type\": {other:?}", i + 1),
        };
        let required: &[&str] = match ty.as_str() {
            "pool_sample" => {
                counts[0] += 1;
                &[
                    "cycle",
                    "event",
                    "pool",
                    "granules",
                    "bypassed",
                    "accesses",
                    "misses",
                    "miss_rate",
                ]
            }
            "reconfig" => {
                counts[1] += 1;
                &[
                    "cycle",
                    "index",
                    "pool",
                    "old_granules",
                    "new_granules",
                    "bypassed",
                    "apki",
                ]
            }
            "metrics" => {
                counts[2] += 1;
                &["scheme", "registry"]
            }
            other => panic!("line {}: unknown type '{other}'", i + 1),
        };
        for key in required {
            assert!(
                v.get(key).is_some(),
                "line {}: '{ty}' line lacks \"{key}\"",
                i + 1
            );
        }
    }
    assert!(counts[0] > 0, "no pool_sample lines");
    assert_eq!(counts[2], 1, "expected exactly one trailing metrics line");
}
