//! The service-mode contract: anything the daemon serves is
//! byte-identical to the same offline invocation, concurrency included —
//! N parallel client connections running the same sweep get the same
//! bytes batch mode prints — and a cancelled job leaves the store
//! serving subsequent requests. Also locks the graceful-shutdown path:
//! the `shutdown` verb drains the daemon and removes the socket file.

use std::path::PathBuf;
use std::sync::atomic::Ordering;

use whirlpool_repro::harness::{Experiment, SchemeKind};
use wp_serve::ops::{self, OpCtx};
use wp_serve::protocol::{ExpOp, Request};
use wp_serve::{Client, ServeConfig, Server};

struct Daemon {
    socket: PathBuf,
    base: PathBuf,
    shutdown: std::sync::Arc<std::sync::atomic::AtomicBool>,
    thread: Option<std::thread::JoinHandle<Result<(), String>>>,
}

impl Daemon {
    /// Binds an in-process daemon on fresh temp dirs and serves it on a
    /// background thread.
    fn start(tag: &str, workers: usize) -> Self {
        let base = std::env::temp_dir().join(format!("wp-serve-det-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let socket = base.join("wp.sock");
        let mut config = ServeConfig::new(&socket);
        config.cache_dir = base.join("cache");
        config.state_dir = base.join("state");
        config.workers = workers;
        let server = Server::bind(&config).expect("bind daemon");
        let shutdown = server.shutdown_flag();
        let thread = std::thread::spawn(move || server.run());
        Self {
            socket,
            base,
            shutdown,
            thread: Some(thread),
        }
    }

    fn client(&self) -> Client {
        Client::connect(&self.socket).expect("connect to daemon")
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            t.join().expect("daemon thread").expect("daemon run");
        }
        let _ = std::fs::remove_dir_all(&self.base);
    }
}

fn strs(args: &[&str]) -> Vec<String> {
    args.iter().map(|s| s.to_string()).collect()
}

#[test]
fn parallel_clients_match_batch_sweep_byte_for_byte() {
    let daemon = Daemon::start("sweep", 2);
    let core = [
        "--apps",
        "delaunay,mcf",
        "--schemes",
        "LRU,Whirlpool",
        "--warmup",
        "20000",
        "--measure",
        "150000",
    ];
    // Batch mode: same argv plus an explicit offline cache dir (the
    // daemon owns its own; bytes must match across that split too).
    let batch_cache = daemon.base.join("batch-cache");
    let mut offline_argv = strs(&core);
    offline_argv.extend(strs(&["--cache-dir", batch_cache.to_str().unwrap()]));
    let offline = ops::run_request(&Request::Sweep { argv: offline_argv }, &OpCtx::offline())
        .expect("offline sweep");

    let served_req = Request::Sweep { argv: strs(&core) };
    let replies: Vec<Vec<String>> = std::thread::scope(|scope| {
        (0..3)
            .map(|_| {
                let req = served_req.clone();
                let daemon = &daemon;
                scope.spawn(move || daemon.client().run(&req).expect("served sweep").lines)
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    for (i, lines) in replies.iter().enumerate() {
        assert_eq!(
            lines, &offline,
            "client {i}'s sweep bytes diverged from batch mode"
        );
    }
}

#[test]
fn served_replay_and_profile_match_offline_byte_for_byte() {
    let daemon = Daemon::start("replay", 2);
    // One real capture both modes replay/profile.
    let trace = daemon.base.join("probe.wpt");
    Experiment::single(SchemeKind::SNucaLru, "mcf")
        .warmup(20_000)
        .measure(150_000)
        .capture_to(&trace)
        .run()
        .expect("capture probe trace");
    let trace = trace.to_str().unwrap();

    let replay_argv = strs(&[trace, "--scheme", "Whirlpool", "--measure", "100000"]);
    let offline = ops::run_request(
        &Request::Experiment {
            op: ExpOp::Replay,
            argv: replay_argv.clone(),
        },
        &OpCtx::offline(),
    )
    .expect("offline replay");
    let served = daemon
        .client()
        .run(&Request::Experiment {
            op: ExpOp::Replay,
            argv: replay_argv,
        })
        .expect("served replay");
    assert_eq!(served.lines, offline, "replay bytes diverged");

    let profile_argv = strs(&[trace, "--sample-rate", "0.2", "--s-max", "512", "--json"]);
    let offline = ops::run_request(
        &Request::Profile {
            argv: profile_argv.clone(),
        },
        &OpCtx::offline(),
    )
    .expect("offline profile");
    let req = Request::Profile { argv: profile_argv };
    // Cold (computes and memoizes) and warm (replays the memo) must both
    // match offline exactly.
    let cold = daemon.client().run(&req).expect("served profile, cold");
    let warm = daemon.client().run(&req).expect("served profile, warm");
    assert_eq!(cold.lines, offline, "cold served profile diverged");
    assert_eq!(warm.lines, offline, "memoized served profile diverged");
}

#[test]
fn served_scenario_matches_offline_byte_for_byte() {
    let daemon = Daemon::start("scenario", 2);
    let wps = daemon.base.join("mini.wps");
    std::fs::write(
        &wps,
        r#"{"name":"mini","seed":11,"cores":4,"epochs":3,"epoch_instrs":30000,
            "warmup_instrs":5000,
            "tenants":[{"name":"a","app":"mcf"},{"name":"b","app":"delaunay"},
                       {"name":"c","app":"lbm","arrival":1,"departure":3}]}"#,
    )
    .expect("write scenario");
    let argv = strs(&[
        wps.to_str().unwrap(),
        "--schemes",
        "Whirlpool,Memshare",
        "--timeline",
        "--check-timeline",
    ]);
    let offline = ops::run_request(&Request::Scenario { argv: argv.clone() }, &OpCtx::offline())
        .expect("offline scenario");
    let served = daemon
        .client()
        .run(&Request::Scenario { argv })
        .expect("served scenario");
    assert_eq!(served.lines, offline, "scenario bytes diverged");
    assert!(
        offline.len() > 1,
        "--timeline must append event lines after the report"
    );

    // A malformed scenario over the wire surfaces as a one-line typed
    // error frame — the daemon stays up and keeps the connection usable.
    let bad = daemon.base.join("bad.wps");
    std::fs::write(&bad, "{\"name\":\"x\",\"cores\":4").expect("write bad scenario");
    let err = daemon
        .client()
        .run(&Request::Scenario {
            argv: strs(&[bad.to_str().unwrap()]),
        })
        .expect_err("malformed scenario must error");
    assert!(!err.contains('\n'), "one-line message: {err:?}");
    assert!(err.contains("scenario"), "names the failing layer: {err}");
}

#[test]
fn cancellation_mid_sweep_leaves_the_store_serving() {
    let daemon = Daemon::start("cancel", 1);
    // A sweep big enough that cancellation lands mid-flight: 4 captures
    // plus a 4x4 grid of cells, with per-cell cancel checkpoints.
    let sweep = Request::Sweep {
        argv: strs(&[
            "--apps",
            "delaunay,mcf,BFS,MST",
            "--schemes",
            "LRU,DRRIP,Jigsaw,Whirlpool",
            "--warmup",
            "20000",
            "--measure",
            "400000",
        ]),
    };
    let mut submitter = daemon.client();
    submitter.send_line(&sweep.to_line()).expect("send sweep");
    let ack = submitter.read_frame().expect("ack frame");
    assert!(ack.contains("\"type\":\"ack\""), "ack: {ack}");
    let job: u64 = ack
        .split("\"job\":")
        .nth(1)
        .and_then(|s| s.trim_end_matches('}').parse().ok())
        .expect("job id in ack");
    // Cancel from a second connection, as a real operator would.
    let cancel_reply = daemon
        .client()
        .call(&Request::Cancel { job })
        .expect("cancel call");
    assert!(
        cancel_reply.contains("\"found\":true"),
        "cancel: {cancel_reply}"
    );
    // The submitter's stream ends in an error or (if the sweep won the
    // race) a done; either way the connection and daemon stay healthy.
    let outcome = submitter.collect();
    if let Err(message) = &outcome {
        assert!(
            message.contains("cancelled"),
            "a cancelled sweep must say so: {message}"
        );
    }
    // The store keeps serving: a fresh request on a fresh connection
    // completes normally.
    let trace = daemon.base.join("after.wpt");
    let record = Request::Experiment {
        op: ExpOp::Record,
        argv: strs(&[
            "mcf",
            "--out",
            trace.to_str().unwrap(),
            "--warmup",
            "10000",
            "--measure",
            "50000",
        ]),
    };
    let reply = daemon.client().run(&record).expect("post-cancel record");
    assert_eq!(reply.lines.len(), 1, "record returns one summary line");
    assert!(trace.exists(), "post-cancel capture landed");
    // And the daemon's own books saw the cancellation (unless the sweep
    // finished first, which the outcome told us about).
    if outcome.is_err() {
        let status = daemon.client().call(&Request::Status).expect("status");
        assert!(status.contains("\"cancelled\":1"), "status: {status}");
    }
}

#[test]
fn shutdown_verb_drains_and_removes_the_socket() {
    let base = std::env::temp_dir().join(format!("wp-serve-det-shut-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let socket = base.join("wp.sock");
    let mut config = ServeConfig::new(&socket);
    config.cache_dir = base.join("cache");
    config.state_dir = base.join("state");
    let server = Server::bind(&config).expect("bind daemon");
    let log_path = server.store().log_path().to_path_buf();
    let thread = std::thread::spawn(move || server.run());
    let mut client = Client::connect(&socket).expect("connect");
    // One real job first, so the drain path has something to have done.
    client
        .run(&Request::Profile {
            argv: vec!["/nonexistent.wpt".into()],
        })
        .expect_err("profiling a missing trace errors");
    let reply = client.call(&Request::Shutdown).expect("shutdown call");
    assert!(reply.contains("\"type\":\"shutdown\""), "reply: {reply}");
    thread
        .join()
        .expect("daemon thread")
        .expect("graceful shutdown returns Ok");
    assert!(!socket.exists(), "socket file must be removed on shutdown");
    let log = std::fs::read_to_string(&log_path).expect("result log flushed");
    assert!(
        log.contains("\"verb\":\"profile\""),
        "result log records the job: {log}"
    );
    let _ = std::fs::remove_dir_all(&base);
}
