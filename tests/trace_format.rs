//! Acceptance tests for the `.wpt` format against the paper-repro
//! workloads: compression on a real capture, self-contained pool tables,
//! and offline consumers (WhirlTool profiling, Mattson curves) reading
//! trace files directly.

use whirlpool_repro::harness::{app_bundle, Classification, RunSpec, SchemeKind};
use wp_trace::TraceInfo;

fn temp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("wp-trace-format-{}-{tag}.wpt", std::process::id()))
}

#[test]
fn delaunay_capture_beats_naive_encoding_4x() {
    // The acceptance bar: a delaunay capture must be ≥ 4x smaller than
    // the naive fixed-width record (u64 address + u32 gap = 12 B/event).
    // delaunay is a worst-ish case — three uniform-random pools, so
    // addresses carry near-maximal entropy for their footprint.
    let path = temp("ratio");
    RunSpec::new(SchemeKind::SNucaLru, "delaunay")
        .warmup(500_000)
        .measure(2_000_000)
        .capture_to(&path)
        .run()
        .expect("capture");
    let info = TraceInfo::scan(&path).expect("scan");
    assert!(info.total_events() > 50_000, "capture is non-trivial");
    let ratio = info.compression_ratio();
    assert!(
        ratio >= 4.0,
        "compression ratio {ratio:.2}x < 4x ({} bytes for {} events)",
        info.file_bytes,
        info.total_events(),
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn capture_is_self_contained_pools_round_trip() {
    // The trace must carry the classification the run was given: replayed
    // descriptors equal the model's manual descriptors field by field.
    let path = temp("pools");
    RunSpec::new(SchemeKind::Whirlpool, "delaunay")
        .warmup(100_000)
        .measure(100_000)
        .capture_to(&path)
        .run()
        .expect("capture");
    let model = wp_workloads::AppModel::new(wp_workloads::registry::spec("delaunay"));
    let want = model.descriptors_manual();
    let got = wp_sim::trace_pools(&path, 0).expect("pools");
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(&want) {
        assert_eq!(g.name, w.name);
        assert_eq!(g.pool, w.pool);
        assert_eq!(g.bytes, w.bytes);
        assert_eq!(g.pages, w.pages);
    }
    // And the bundle built from the trace carries the recorded name.
    let bundle =
        app_bundle(&format!("trace:{}", path.display()), Classification::Manual).expect("bundle");
    assert_eq!(bundle.name, "delaunay");
    assert_eq!(bundle.pools.len(), want.len());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn offline_consumers_read_trace_files() {
    // WhirlTool's profiler and the Mattson machinery both consume the
    // capture directly — no model, no simulator.
    let path = temp("consumers");
    RunSpec::new(SchemeKind::Whirlpool, "MIS")
        .warmup(100_000)
        .measure(400_000)
        .capture_to(&path)
        .run()
        .expect("capture");

    // Mattson: MIS streams edges far past the LLC, so the whole-app curve
    // keeps missing at large capacities.
    let curve = wp_mrc::curve_from_trace(&path, 0, 1024).expect("curve");
    assert!(curve.at_zero() > 50.0, "MIS is memory-intensive");
    assert!(curve.floor() > 0.0, "streaming edges never fully cache");

    // WhirlTool: pool-granular profiling separates the cacheable vertices
    // from the streaming edges.
    let (data, legend) = wp_whirltool::profile_trace_file(
        &path,
        wp_whirltool::ProfilerConfig {
            interval_instrs: 200_000,
            total_instrs: 400_000,
            granule_lines: 1024,
            curve_points: 64,
            sample: None,
        },
    )
    .expect("profile");
    assert_eq!(legend.len(), 2, "MIS has two pools");
    assert!(!data.callpoints.is_empty());
    assert!(!data.intervals.is_empty());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn truncated_capture_errors_cleanly_through_the_stack() {
    // Chop a real capture mid-file: the codec reports Truncated (never a
    // panic), and TraceInfo::scan propagates it.
    let path = temp("truncate");
    RunSpec::new(SchemeKind::SNucaLru, "delaunay")
        .warmup(50_000)
        .measure(100_000)
        .capture_to(&path)
        .run()
        .expect("capture");
    let bytes = std::fs::read(&path).unwrap();
    let cut = temp("truncate-cut");
    std::fs::write(&cut, &bytes[..bytes.len() * 2 / 3]).unwrap();
    assert!(TraceInfo::scan(&cut).is_err());
    std::fs::remove_file(&path).unwrap();
    std::fs::remove_file(&cut).unwrap();
}
