//! Cross-crate integration tests: the full pipeline from allocator to
//! simulator, on small budgets suitable for debug-mode CI.

use whirlpool::{PoolAllocator, VcRegistry, WhirlpoolScheme};
use whirlpool_repro::harness::{four_core_config, Experiment, SchemeKind};
use wp_noc::CoreId;
use wp_sim::{LlcScheme, WorkloadBundle};
use wp_workloads::{registry, AppModel, AppSpec, Pattern, PoolSpec};

/// A small dt-like spec that converges quickly in debug builds.
fn small_dt() -> AppSpec {
    AppSpec::steady(
        "small-dt",
        vec![
            PoolSpec::new("points", 128 * 1024, Pattern::Uniform),
            PoolSpec::new("vertices", 384 * 1024, Pattern::Uniform),
            PoolSpec::new("triangles", 1024 * 1024, Pattern::Uniform),
        ],
        &[8.0, 8.0, 9.0],
        25.0,
        7,
    )
}

#[test]
fn every_scheme_runs_the_same_workload() {
    let kinds = [
        SchemeKind::SNucaLru,
        SchemeKind::SNucaDrrip,
        SchemeKind::IdealSpd,
        SchemeKind::Awasthi,
        SchemeKind::Jigsaw,
        SchemeKind::JigsawNoBypass,
        SchemeKind::Whirlpool,
        SchemeKind::WhirlpoolNoBypass,
    ];
    for kind in kinds {
        let mut sys = four_core_config();
        sys.reconfig_interval_cycles = 500_000;
        let model = AppModel::new(small_dt());
        let pools = if kind.uses_pools() {
            model.descriptors_manual()
        } else {
            Vec::new()
        };
        let out = Experiment::bundles(kind, vec![model.bundle(pools)])
            .system(sys)
            .measure(1_000_000)
            .run()
            .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        assert!(out.cores[0].instructions >= 1_000_000, "{kind:?}");
        assert!(out.cores[0].llc_apki() > 5.0, "{kind:?}");
        assert!(out.energy.total_nj() > 0.0, "{kind:?}");
    }
}

#[test]
fn allocator_to_scheme_page_flow() {
    // Pages allocated through the public API are exactly the pages the
    // scheme sees in the descriptors.
    let mut alloc = PoolAllocator::new();
    let pool = alloc.pool_create("grid");
    let a = alloc.pool_malloc(64 * 1024, pool);
    let descs = alloc.descriptors();
    assert_eq!(descs.len(), 1);
    assert!(descs[0].pages.contains(&a.page()));
    // Feed them to Whirlpool: a VC must be created for the pool.
    let sys = four_core_config();
    let mut scheme = WhirlpoolScheme::new(sys);
    scheme.attach_core(CoreId(0), &descs);
    let labels: Vec<String> = scheme.runtime().vcs().iter().map(|v| v.label()).collect();
    assert!(labels.contains(&"grid".to_string()));
}

#[test]
fn syscall_layer_matches_allocator_pages() {
    let mut reg = VcRegistry::new(4);
    let vc = reg.sys_vc_alloc(1).unwrap();
    let mut alloc = PoolAllocator::new();
    let pool = alloc.pool_create("data");
    let addr = alloc.pool_malloc(3 * 4096, pool);
    reg.sys_vc_tag(1, addr, 3 * 4096, vc).unwrap();
    for off in [0u64, 4096, 2 * 4096] {
        assert_eq!(reg.page_table().vc_of_addr(addr.offset(off)), Some(vc));
    }
}

#[test]
fn multicore_mix_runs_and_reports_all_cores() {
    let mut sys = four_core_config();
    sys.reconfig_interval_cycles = 500_000;
    let bundles = (0..4u16)
        .map(|c| {
            let model = AppModel::new(small_dt());
            WorkloadBundle {
                trace: Box::new(model.trace_seeded(c as u64)),
                pools: vec![],
                name: format!("app{c}"),
            }
        })
        .collect();
    let out = Experiment::bundles(SchemeKind::Jigsaw, bundles)
        .system(sys)
        .measure(500_000)
        .run()
        .expect("bespoke 4-core mix");
    for c in 0..4 {
        assert!(out.cores[c].instructions >= 500_000);
        assert!(out.cores[c].ipc() > 0.0);
    }
}

#[test]
fn registry_apps_have_valid_manual_classifications() {
    // Every Table 2 app key present in the registry produces pools whose
    // pages are disjoint and non-empty.
    for key in ["BFS", "delaunay", "MIS", "lbm", "mcf", "cactus"] {
        let model = AppModel::new(registry::spec(key));
        let descs = model.descriptors_manual();
        assert!(!descs.is_empty(), "{key}");
        let mut seen = std::collections::HashSet::new();
        for d in &descs {
            assert!(!d.pages.is_empty(), "{key}/{}", d.name);
            for p in &d.pages {
                assert!(seen.insert(*p), "{key}: page in two pools");
            }
        }
    }
}
