//! Parallel-run capture, the last capture gap: an `Experiment::parallel`
//! run recorded to a `.wpt` file (one stream per core, pool tables in the
//! stream headers) replays **bit-identically** — the same
//! `RunSummary::to_json` — when every stream is re-attached to its core.
//! This closes the ROADMAP's "`run_parallel` capture is still open" item
//! and is the round-trip guarantee the `trace_tool record --parallel` /
//! `replay --mix --sixteen-core` CLI path rides on.

use whirlpool_repro::harness::{sixteen_core_config, Classification, Experiment, SchemeKind};
use wp_paws::SchedPolicy;
use wp_workloads::parallel::{ParallelSpec, RemoteKind};
use wp_workloads::Pattern;

/// A miniature connected-components-like parallel app: big enough to
/// schedule real steals across 16 cores, small enough for debug-mode CI.
fn mini_parallel() -> ParallelSpec {
    ParallelSpec {
        name: "cc-mini",
        partitions: 16,
        bytes_per_partition: 256 * 1024,
        pattern: Pattern::Uniform,
        rounds: 3,
        tasks_per_partition: 2,
        instrs_per_task: 40_000,
        accesses_per_task: 2_500,
        remote_frac: 0.3,
        remote_kind: RemoteKind::RandomCut,
        foreign_penalty: 1.5,
        duration_jitter: 0.4,
        seed: 5,
    }
}

fn temp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("wp-par-cap-{}-{tag}.wpt", std::process::id()))
}

#[test]
fn parallel_capture_replays_bit_identically() {
    for (kind, policy) in [
        (SchemeKind::Whirlpool, SchedPolicy::Paws),
        (SchemeKind::Jigsaw, SchedPolicy::WorkStealing),
    ] {
        let path = temp(kind.label());
        let live = Experiment::parallel(kind, mini_parallel(), policy)
            .capture_to(&path)
            .run_full()
            .expect("parallel capture run");
        assert!(live.schedule.is_some(), "parallel runs carry a schedule");
        assert_eq!(live.summary.cores.len(), 16);
        assert!(live.summary.total_instructions() > 0);

        // Re-attach every stream to its own core on the same chip.
        let replayed = Experiment::replay(kind, &path)
            .all_streams()
            .system(sixteen_core_config())
            .run()
            .expect("parallel replay");
        assert_eq!(
            live.summary.to_json(),
            replayed.to_json(),
            "{kind:?} parallel capture diverged on replay"
        );
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn parallel_capture_has_one_stream_per_core_with_pools() {
    let path = temp("streams");
    Experiment::parallel(SchemeKind::Whirlpool, mini_parallel(), SchedPolicy::Paws)
        .capture_to(&path)
        .run()
        .expect("capture");
    let info = wp_trace::TraceInfo::scan(&path).expect("scan");
    assert_eq!(info.streams.len(), 16, "one stream per core");
    // Whirlpool's per-partition classification is recorded in the stream
    // headers, so the replay above can restore it.
    for s in &info.streams {
        assert_eq!(s.meta.pools.len(), 1, "stream {} pools", s.meta.id);
        assert!(s.meta.pools[0].name.starts_with("part"));
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn replaying_one_core_of_a_parallel_capture_works() {
    let path = temp("one-core");
    Experiment::parallel(SchemeKind::Whirlpool, mini_parallel(), SchedPolicy::Paws)
        .capture_to(&path)
        .run()
        .expect("capture");
    // Core 3's stream alone on core 0 of the 4-core chip: a valid
    // single-stream replay (the stream is finite; run to exhaustion).
    let out = Experiment::replay(SchemeKind::SNucaLru, &path)
        .stream(3)
        .classification(Classification::None)
        .run()
        .expect("single-stream replay");
    assert!(out.cores[0].instructions > 0);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn oversubscribed_replay_of_a_parallel_capture_is_typed() {
    use whirlpool_repro::harness::HarnessError;
    let path = temp("oversub");
    Experiment::parallel(SchemeKind::Whirlpool, mini_parallel(), SchedPolicy::Paws)
        .capture_to(&path)
        .run()
        .expect("capture");
    // 16 streams do not fit the default 4-core chip.
    match Experiment::replay(SchemeKind::Whirlpool, &path)
        .all_streams()
        .run()
    {
        Err(HarnessError::TooManyWorkloads { workloads, cores }) => {
            assert_eq!((workloads, cores), (16, 4));
        }
        other => panic!("expected TooManyWorkloads, got {other:?}"),
    }
    std::fs::remove_file(&path).unwrap();
}
