//! SHARDS-sampled MRC accuracy over the whole registry.
//!
//! For every registry app, a quarter-scale stream is profiled three ways
//! — exact Mattson, fixed-rate SHARDS, and `s_max`-adaptive SHARDS — and
//! the sampled miss-ratio curves must stay within a small bound of the
//! exact one. The bound uses the 5%-capacity-slack metric
//! ([`wp_mrc::max_miss_ratio_error_with_slack`]): spatial sampling
//! reproduces a working-set cliff's height but can place it a percent or
//! two sideways, and the strict pointwise metric reports the full cliff
//! height for every capacity between the two positions (see the metric's
//! docs). Smooth-curve apps are additionally held to the strict
//! pointwise bound.

use wp_mrc::{
    max_miss_ratio_error, max_miss_ratio_error_with_slack, MattsonStack, ShardsConfig, ShardsStack,
    StackDistanceHistogram,
};
use wp_sim::Workload;
use wp_workloads::{registry, AppModel};

/// Quarter-scale event budget per app: enough for every pool's working
/// set to cycle several times, small enough that profiling all 31 apps
/// three ways stays a quick (debug-mode) test.
const EVENTS: u64 = 300_000;
const GRANULE: u64 = 256;
const FIXED_RATE: f64 = 0.1;
const S_MAX: usize = 8_192;

fn exact_and_sampled(app: &str, cfg: ShardsConfig) -> (StackDistanceHistogram, ShardsStack) {
    let model = AppModel::new(registry::spec(app));
    let mut stream = model.trace_seeded(0x5EED);
    let mut exact = MattsonStack::new();
    let mut sampled = ShardsStack::new(cfg);
    for _ in 0..EVENTS {
        let ev = stream.next_event().expect("model streams are infinite");
        exact.access(ev.line.0);
        sampled.access(ev.line.0);
    }
    (exact.take_histogram(), sampled)
}

#[test]
fn sampled_curves_track_exact_for_every_registry_app() {
    for app in registry::all_apps() {
        for (label, cfg) in [
            ("fixed", ShardsConfig::fixed(FIXED_RATE)),
            ("adaptive", ShardsConfig::adaptive(1.0, S_MAX)),
        ] {
            let (exact, mut sampled) = exact_and_sampled(app, cfg);
            let peak = sampled.peak_tracked();
            if cfg.s_max.is_some() {
                assert!(peak <= S_MAX, "{app}/{label}: peak {peak} > s_max {S_MAX}");
            }
            let hist = sampled.take_histogram();
            assert_eq!(
                hist.total(),
                exact.total(),
                "{app}/{label}: corrected total must match the reference count"
            );
            let err = max_miss_ratio_error_with_slack(&exact, &hist, GRANULE, 0.05);
            assert!(
                err <= 0.03,
                "{app}/{label}: miss-ratio error {err:.4} > 0.03 (peak tracked {peak})"
            );
        }
    }
}

#[test]
fn smooth_curves_meet_the_strict_pointwise_bound() {
    // Apps whose pools are all Uniform/HotCold have no vertical cliff, so
    // the strict metric is meaningful — and must hold at the documented
    // 0.02 even without capacity slack.
    for app in ["SA", "delaunay", "hull", "soplex"] {
        let (exact, mut sampled) = exact_and_sampled(app, ShardsConfig::fixed(FIXED_RATE));
        let err = max_miss_ratio_error(&exact, &sampled.take_histogram(), GRANULE);
        assert!(
            err <= 0.02,
            "{app}: strict miss-ratio error {err:.4} > 0.02"
        );
    }
}

#[test]
fn sampling_is_deterministic_per_app() {
    // Same stream, same config, twice: bit-identical histograms (the
    // spatial hash is fixed, not seeded).
    for app in ["mcf", "MIS"] {
        let (_, mut a) = exact_and_sampled(app, ShardsConfig::adaptive(0.25, S_MAX));
        let (_, mut b) = exact_and_sampled(app, ShardsConfig::adaptive(0.25, S_MAX));
        assert_eq!(a.take_histogram(), b.take_histogram(), "{app}");
    }
}
