//! Replay determinism: for every Fig. 10 scheme, capturing a short
//! `delaunay` run and replaying the trace with the same budgets yields an
//! *identical* `RunSummary` — instructions, misses, bypasses, cycles, and
//! energy, bit for bit.
//!
//! This is the core guarantee of the trace subsystem: capture tees every
//! event the driver pulls (warmup included), the codec is lossless, and
//! the driver is deterministic given the event stream, so a recorded run
//! is fully reproducible without its generating model.

use whirlpool_repro::harness::{Classification, RunSpec, SchemeKind};

const WARMUP: u64 = 400_000;
const MEASURE: u64 = 400_000;

fn temp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("wp-replay-det-{}-{tag}.wpt", std::process::id()))
}

#[test]
fn every_fig10_scheme_replays_bit_identically() {
    for kind in SchemeKind::FIG10 {
        let path = temp(kind.label());
        let live = RunSpec::new(kind, "delaunay")
            .warmup(WARMUP)
            .measure(MEASURE)
            .capture_to(&path)
            .run()
            .expect("capture run");
        let uri = format!("trace:{}", path.display());
        let replayed = RunSpec::new(kind, &uri)
            .warmup(WARMUP)
            .measure(MEASURE)
            .run()
            .expect("replay run");

        // Spot-check the load-bearing counters explicitly...
        let (l, r) = (&live.cores[0], &replayed.cores[0]);
        assert_eq!(l.instructions, r.instructions, "{kind:?} instructions");
        assert_eq!(l.llc_misses, r.llc_misses, "{kind:?} misses");
        assert_eq!(l.llc_hits, r.llc_hits, "{kind:?} hits");
        assert_eq!(l.llc_bypasses, r.llc_bypasses, "{kind:?} bypasses");
        assert_eq!(l.cycles.to_bits(), r.cycles.to_bits(), "{kind:?} cycles");
        assert_eq!(
            live.energy.total_nj().to_bits(),
            replayed.energy.total_nj().to_bits(),
            "{kind:?} energy"
        );
        // ...then the whole summary: the JSON rendering round-trips f64s
        // exactly, so string equality is bit equality of every field.
        assert_eq!(live.to_json(), replayed.to_json(), "{kind:?} full summary");

        // Sanity: the run actually did something.
        assert!(l.instructions >= MEASURE, "{kind:?} ran");
        assert!(
            l.llc_accesses + l.llc_bypasses > 0,
            "{kind:?} accessed the LLC"
        );
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn every_fig10_scheme_batched_replay_matches_per_event() {
    // The batched (column-slice, zero-copy) delivery path must be
    // observationally invisible: for every scheme, replaying the same
    // capture per-event and batched yields bit-identical summaries.
    use whirlpool_repro::harness::Experiment;
    use wp_sim::ExecMode;
    let path = temp("exec-mode");
    Experiment::single(SchemeKind::SNucaLru, "delaunay")
        .warmup(WARMUP)
        .measure(MEASURE)
        .capture_to(&path)
        .run()
        .expect("capture run");
    for kind in SchemeKind::FIG10 {
        let run = |mode| {
            Experiment::replay(kind, &path)
                .warmup(WARMUP)
                .measure(MEASURE)
                .exec_mode(mode)
                .run()
                .expect("replay run")
        };
        let per_event = run(ExecMode::PerEvent);
        let batched = run(ExecMode::Batched);
        assert_eq!(
            per_event.to_json(),
            batched.to_json(),
            "{kind:?}: batched replay diverged from per-event"
        );
        assert!(per_event.cores[0].instructions >= MEASURE, "{kind:?} ran");
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn replay_without_pools_strips_classification() {
    // A Whirlpool capture replayed with Classification::None must not
    // hand the recorded pools to the scheme: it degenerates to the
    // thread-VC-only configuration and (in general) different stats.
    let path = temp("strip");
    let live = RunSpec::new(SchemeKind::Whirlpool, "delaunay")
        .warmup(WARMUP)
        .measure(MEASURE)
        .capture_to(&path)
        .run()
        .expect("capture");
    let uri = format!("trace:{}", path.display());
    let stripped = RunSpec::new(SchemeKind::Whirlpool, &uri)
        .classification(Classification::None)
        .warmup(WARMUP)
        .measure(MEASURE)
        .run()
        .expect("replay");
    // Same instruction stream either way.
    assert_eq!(live.cores[0].instructions, stripped.cores[0].instructions);
    // Structurally: None strips the recorded pools, Manual restores them.
    use whirlpool_repro::harness::app_bundle;
    assert!(app_bundle(&uri, Classification::None)
        .unwrap()
        .pools
        .is_empty());
    assert_eq!(
        app_bundle(&uri, Classification::Manual)
            .unwrap()
            .pools
            .len(),
        3
    );
    // Behaviourally: without its per-pool VCs Whirlpool degenerates to
    // the thread-VC-only configuration and places/bypasses differently.
    assert_ne!(live.to_json(), stripped.to_json());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn trace_uri_works_in_a_multiprogram_mix() {
    use whirlpool_repro::harness::Experiment;
    let path = temp("mix");
    RunSpec::new(SchemeKind::SNucaLru, "delaunay")
        .warmup(100_000)
        .measure(150_000)
        .capture_to(&path)
        .run()
        .expect("capture");
    let uri = format!("trace:{}", path.display());
    let out = Experiment::mix(SchemeKind::SNucaLru, &[uri.as_str(), "mcf"])
        .measure(100_000)
        .run()
        .expect("mix with a trace core");
    assert!(out.cores[0].instructions >= 100_000, "trace core ran");
    assert!(out.cores[1].instructions >= 100_000, "model core ran");
    std::fs::remove_file(&path).unwrap();
}
