//! The harness error surface, end to end: every misuse — unknown app,
//! unknown scheme, over-subscribed floorplan, missing/corrupt trace,
//! colliding trace mix — yields the matching typed [`HarnessError`]
//! variant through `Experiment`/`RunSpec` (no panics). The matching
//! `trace_tool` CLI exit-code tests live with the binary, in
//! `crates/serve/tests/cli_errors.rs`.

use whirlpool_repro::harness::{Classification, Experiment, HarnessError, RunSpec, SchemeKind};

fn temp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("wp-errors-{}-{tag}.wpt", std::process::id()))
}

fn capture_small(tag: &str) -> std::path::PathBuf {
    let path = temp(tag);
    RunSpec::new(SchemeKind::SNucaLru, "delaunay")
        .warmup(50_000)
        .measure(100_000)
        .capture_to(&path)
        .run()
        .expect("capture");
    path
}

// ---------------------------------------------------------------------------
// API surface
// ---------------------------------------------------------------------------

#[test]
fn unknown_app_yields_typed_error_with_suggestion() {
    for result in [
        Experiment::single(SchemeKind::SNucaLru, "delauny").run(),
        RunSpec::new(SchemeKind::SNucaLru, "delauny").run(),
        Experiment::mix(SchemeKind::SNucaLru, &["mcf", "delauny"]).run(),
    ] {
        match result {
            Err(HarnessError::UnknownApp { name, suggestion }) => {
                assert_eq!(name, "delauny");
                assert_eq!(suggestion.as_deref(), Some("delaunay"));
            }
            other => panic!("expected UnknownApp, got {other:?}"),
        }
    }
}

#[test]
fn unknown_scheme_yields_typed_error_with_suggestion() {
    match SchemeKind::resolve("jigsw") {
        Err(HarnessError::UnknownScheme { name, suggestion }) => {
            assert_eq!(name, "jigsw");
            assert_eq!(suggestion.as_deref(), Some("Jigsaw"));
        }
        other => panic!("expected UnknownScheme, got {other:?}"),
    }
}

#[test]
fn oversubscribed_floorplan_yields_typed_error() {
    // 5 apps on the 4-core chip...
    match Experiment::mix(SchemeKind::SNucaLru, &["delaunay"; 5]).run() {
        Err(HarnessError::TooManyWorkloads { workloads, cores }) => {
            assert_eq!((workloads, cores), (5, 4));
        }
        other => panic!("expected TooManyWorkloads, got {other:?}"),
    }
    // ...and the error names the 16-core escape hatch.
    let msg = HarnessError::TooManyWorkloads {
        workloads: 5,
        cores: 4,
    }
    .to_string();
    assert!(msg.contains("16-core"), "{msg}");
}

#[test]
fn missing_trace_yields_trace_error() {
    for result in [
        Experiment::single(SchemeKind::SNucaLru, "trace:/nonexistent/x.wpt").run(),
        Experiment::replay(SchemeKind::SNucaLru, "/nonexistent/x.wpt").run(),
    ] {
        assert!(matches!(result, Err(HarnessError::Trace(_))), "{result:?}");
    }
}

#[test]
fn corrupt_trace_yields_trace_error() {
    // Valid magic + version, then garbage: the reader must reject it with
    // a typed error, and the harness must pass that through.
    let path = temp("corrupt");
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"WPT1");
    bytes.extend_from_slice(&1u16.to_le_bytes());
    bytes.extend_from_slice(&0u16.to_le_bytes());
    bytes.extend_from_slice(&[0xFF; 64]);
    std::fs::write(&path, bytes).unwrap();
    let result =
        Experiment::single(SchemeKind::SNucaLru, &format!("trace:{}", path.display())).run();
    assert!(matches!(result, Err(HarnessError::Trace(_))), "{result:?}");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn colliding_trace_mix_yields_typed_error_naming_cores() {
    let path = capture_small("collide");
    let uri = format!("trace:{}", path.display());
    match Experiment::mix(SchemeKind::SNucaLru, &[&uri, &uri]).run() {
        Err(HarnessError::AddressSpaceCollision {
            core_a,
            app_a,
            core_b,
            app_b,
        }) => {
            assert_eq!((core_a, core_b), (0, 1));
            assert_eq!(app_a, uri);
            assert_eq!(app_b, uri);
        }
        other => panic!("expected AddressSpaceCollision, got {other:?}"),
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn colliding_traces_are_caught_even_when_pool_tables_dont_overlap() {
    // Two hand-written captures whose pool tables are disjoint but whose
    // *event streams* overlap: the collision check must use the exact
    // recorded line span, not the (under-covering) pool tables.
    use wp_trace::{PoolMeta, TraceWriter};
    let mk = |tag: &str, pool_page: u64| {
        let path = temp(tag);
        let mut w = TraceWriter::create(&path).expect("create");
        let pools = [PoolMeta {
            name: "p".into(),
            pool: Some(1),
            bytes: 4096,
            pages: vec![wp_mem::PageId(pool_page)],
        }];
        let s = w.add_stream(tag, &pools).expect("stream");
        // Events sweep pages 0..=200 — far beyond the one-page pool.
        for i in 0..200u64 {
            w.record(s, 50, wp_mem::LineAddr(i * wp_mem::LINES_PER_PAGE), false)
                .expect("record");
        }
        w.finish().expect("finish");
        path
    };
    let a = mk("alias-a", 500);
    let b = mk("alias-b", 900);
    let (ua, ub) = (
        format!("trace:{}", a.display()),
        format!("trace:{}", b.display()),
    );
    // Default classification restores the (disjoint) pools; the streams
    // still alias, so the mix must be rejected.
    match Experiment::mix(SchemeKind::Whirlpool, &[&ua, &ub]).run() {
        Err(HarnessError::AddressSpaceCollision { core_a, core_b, .. }) => {
            assert_eq!((core_a, core_b), (0, 1));
        }
        other => panic!("expected AddressSpaceCollision, got {other:?}"),
    }
    std::fs::remove_file(&a).unwrap();
    std::fs::remove_file(&b).unwrap();
}

#[test]
fn replay_with_too_many_streams_for_the_chip_is_typed() {
    // A 2-stream mix capture re-attached with --all-streams fits the
    // 4-core chip; the same capture cannot oversubscribe, so exercise the
    // error by replaying on a chip smaller than the stream count is
    // impossible with stock floorplans — instead verify the stream-select
    // error path: a stream id the capture does not define.
    let path = capture_small("stream-range");
    let result = Experiment::replay(SchemeKind::SNucaLru, &path)
        .stream(9)
        .classification(Classification::None)
        .run();
    match result {
        Err(HarnessError::Trace(e)) => {
            assert!(e.to_string().contains("stream 9"), "{e}");
        }
        other => panic!("expected a Trace error, got {other:?}"),
    }
    std::fs::remove_file(&path).unwrap();
}
