//! Workspace smoke test: the quickstart path — one short
//! [`run_single_app`] per [`SchemeKind`] — so CI exercises every scheme
//! end to end (registry app, budgets, classification, simulator, stats),
//! not just the unit tests.

use whirlpool_repro::harness::{
    exec_cycles, run_single_app, speedup_pct, Classification, SchemeKind,
};

const ALL_SCHEMES: [SchemeKind; 8] = [
    SchemeKind::SNucaLru,
    SchemeKind::SNucaDrrip,
    SchemeKind::IdealSpd,
    SchemeKind::Awasthi,
    SchemeKind::Jigsaw,
    SchemeKind::JigsawNoBypass,
    SchemeKind::Whirlpool,
    SchemeKind::WhirlpoolNoBypass,
];

/// Short measured budget: enough for every scheme to produce non-trivial
/// LLC traffic in a debug-mode CI run, far below the paper budgets.
const INSTRS: u64 = 250_000;

#[test]
fn quickstart_runs_every_scheme() {
    for kind in ALL_SCHEMES {
        let classification = if kind.uses_pools() {
            Classification::Manual
        } else {
            Classification::None
        };
        let out = run_single_app(kind, "delaunay", classification, INSTRS);
        // Scheme names ("S-NUCA (LRU)") are longer than figure labels
        // ("LRU"); just require the summary to be tagged with one.
        assert!(!out.scheme.is_empty(), "{kind:?}");
        assert!(
            out.cores[0].instructions >= INSTRS,
            "{kind:?}: ran {} < {INSTRS} instructions",
            out.cores[0].instructions
        );
        assert!(out.cores[0].llc_accesses > 0, "{kind:?}: no LLC traffic");
        assert!(
            exec_cycles(&out) > 0.0 && out.energy.total_nj() > 0.0,
            "{kind:?}: empty stats"
        );
    }
}

#[test]
fn quickstart_whirltool_classification_path() {
    // The automatic-classification variant of the quickstart: WhirlTool
    // profiles the train input, clusters, and the scheme consumes the
    // resulting pools.
    let out = run_single_app(
        SchemeKind::Whirlpool,
        "delaunay",
        Classification::WhirlTool {
            pools: 3,
            train: true,
        },
        INSTRS,
    );
    assert_eq!(out.scheme, "Whirlpool");
    assert!(out.cores[0].llc_accesses > 0);
}

#[test]
fn quickstart_speedup_math_is_sane() {
    // Not a performance claim (budgets are tiny and this is a debug
    // build) — just that the comparison arithmetic the README quickstart
    // performs is well-defined on real run output.
    let jig = run_single_app(SchemeKind::Jigsaw, "delaunay", Classification::None, INSTRS);
    let wp = run_single_app(
        SchemeKind::Whirlpool,
        "delaunay",
        Classification::Manual,
        INSTRS,
    );
    let s = speedup_pct(exec_cycles(&jig), exec_cycles(&wp));
    assert!(s.is_finite());
}
