//! The fault-injection proof obligation, end to end: under any injected
//! fault the stack either returns one typed error line or transparently
//! recovers — and whenever it recovers, the eventual successful output
//! is byte-identical to a fault-free run.
//!
//! Covers the self-healing trace cache (real on-disk corruption and
//! injected reader faults, offline and through the daemon), worker
//! panic isolation at the daemon level, and a daemon-side socket drop
//! surfacing as the typed retryable error class.
//!
//! Every test that arms the process-global fault layer holds
//! [`wp_fault::test_guard`] for its whole body, so in-binary test
//! threads never see each other's arms.

use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;

use wp_serve::client::is_shutdown_error;
use wp_serve::ops::{self, OpCtx};
use wp_serve::protocol::Request;
use wp_serve::{Client, ServeConfig, Server};

struct Daemon {
    socket: PathBuf,
    base: PathBuf,
    shutdown: std::sync::Arc<std::sync::atomic::AtomicBool>,
    thread: Option<std::thread::JoinHandle<Result<(), String>>>,
}

impl Daemon {
    /// Binds an in-process daemon on fresh temp dirs and serves it on a
    /// background thread.
    fn start(tag: &str, workers: usize) -> Self {
        let base = std::env::temp_dir().join(format!("wp-fault-rec-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let socket = base.join("wp.sock");
        let mut config = ServeConfig::new(&socket);
        config.cache_dir = base.join("cache");
        config.state_dir = base.join("state");
        config.workers = workers;
        let server = Server::bind(&config).expect("bind daemon");
        let shutdown = server.shutdown_flag();
        let thread = std::thread::spawn(move || server.run());
        Self {
            socket,
            base,
            shutdown,
            thread: Some(thread),
        }
    }

    fn client(&self) -> Client {
        Client::connect(&self.socket).expect("connect to daemon")
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            t.join().expect("daemon thread").expect("daemon run");
        }
        let _ = std::fs::remove_dir_all(&self.base);
    }
}

fn strs(args: &[&str]) -> Vec<String> {
    args.iter().map(|s| s.to_string()).collect()
}

/// A small sweep whose one capture lands in `cache_dir`.
fn sweep_req(cache_dir: &Path) -> Request {
    Request::Sweep {
        argv: strs(&[
            "--apps",
            "mcf",
            "--schemes",
            "LRU,Whirlpool",
            "--warmup",
            "20000",
            "--measure",
            "150000",
            "--cache-dir",
            cache_dir.to_str().unwrap(),
        ]),
    }
}

/// The daemon-side variant: same grid, daemon-owned cache.
fn served_sweep_req() -> Request {
    Request::Sweep {
        argv: strs(&[
            "--apps",
            "mcf",
            "--schemes",
            "LRU,Whirlpool",
            "--warmup",
            "20000",
            "--measure",
            "150000",
        ]),
    }
}

/// The single `.wpt` file a warmed cache dir holds.
fn cached_trace(cache_dir: &Path) -> PathBuf {
    let mut wpts: Vec<PathBuf> = std::fs::read_dir(cache_dir)
        .expect("cache dir exists after a sweep")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "wpt"))
        .collect();
    assert_eq!(wpts.len(), 1, "one app sweeps to one capture: {wpts:?}");
    wpts.pop().unwrap()
}

fn truncate_to_half(path: &Path) {
    let len = std::fs::metadata(path).expect("cached trace").len();
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(path)
        .expect("open cached trace");
    f.set_len(len / 2).expect("truncate cached trace");
}

fn flip_one_bit(path: &Path) {
    let mut bytes = std::fs::read(path).expect("read cached trace");
    let at = bytes.len() / 2;
    bytes[at] ^= 0x10;
    std::fs::write(path, bytes).expect("write corrupted trace");
}

#[test]
fn corrupted_cache_heals_offline_with_byte_identical_output() {
    let base = std::env::temp_dir().join(format!("wp-fault-rec-{}-offline", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let cache = base.join("cache");
    let req = sweep_req(&cache);
    let baseline = ops::run_request(&req, &OpCtx::offline()).expect("warming sweep");

    // Truncation: the cached capture loses its tail mid-file.
    truncate_to_half(&cached_trace(&cache));
    let healed = ops::run_request(&req, &OpCtx::offline()).expect("sweep over truncated cache");
    assert_eq!(
        healed, baseline,
        "recovery from truncation must reproduce the fault-free bytes"
    );

    // Bit rot: one flipped bit mid-file, caught by the per-block CRC.
    flip_one_bit(&cached_trace(&cache));
    let healed = ops::run_request(&req, &OpCtx::offline()).expect("sweep over bit-flipped cache");
    assert_eq!(
        healed, baseline,
        "recovery from a bit flip must reproduce the fault-free bytes"
    );

    // The heal re-captured: the cache holds a readable trace again.
    let trace = cached_trace(&cache);
    wp_trace::TraceInfo::scan(&trace).expect("re-captured trace is intact");
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn corrupted_cache_heals_through_the_daemon_and_its_warm_index() {
    let daemon = Daemon::start("healcache", 2);
    let req = served_sweep_req();
    let baseline = daemon.client().run(&req).expect("warming served sweep");

    // Corrupt the daemon's own cached capture behind its back. The warm
    // index still says "cached", so the healing path must run: evict
    // (file AND index entry), re-capture, retry.
    flip_one_bit(&cached_trace(&daemon.base.join("cache")));
    let healed = daemon
        .client()
        .run(&req)
        .expect("served sweep over corrupt cache");
    assert_eq!(
        healed.lines, baseline.lines,
        "daemon recovery must reproduce the fault-free bytes"
    );

    // And again from warm state, proving the index was re-seeded
    // honestly rather than left pointing at the evicted file.
    let warm = daemon.client().run(&req).expect("follow-up served sweep");
    assert_eq!(warm.lines, baseline.lines);
}

#[test]
fn injected_reader_fault_heals_with_byte_identical_output() {
    let _guard = wp_fault::test_guard();
    let base = std::env::temp_dir().join(format!("wp-fault-rec-{}-reader", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let cache = base.join("cache");
    let req = sweep_req(&cache);
    let baseline = ops::run_request(&req, &OpCtx::offline()).expect("warming sweep");

    // Each reader fault class in turn: the armed shot fires once on the
    // cached-trace open, the sweep evicts + re-captures, and the retry
    // (arm now spent) must land on the fault-free bytes.
    for spec in [
        "reader-io@1:42",
        "reader-truncate@1:43",
        "reader-bitflip@1:44",
    ] {
        wp_fault::install(wp_fault::FaultPlan::parse(spec).expect("valid spec"));
        let healed = ops::run_request(&req, &OpCtx::offline())
            .unwrap_or_else(|e| panic!("sweep under {spec} must self-heal, got: {e}"));
        assert_eq!(
            healed, baseline,
            "recovery from {spec} must reproduce the fault-free bytes"
        );
    }
    wp_fault::clear();
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn injected_worker_panic_leaves_the_daemon_serving_identical_bytes() {
    let _guard = wp_fault::test_guard();
    let daemon = Daemon::start("panic", 1);
    let req = served_sweep_req();
    let baseline = daemon.client().run(&req).expect("warming served sweep");

    wp_fault::install(wp_fault::FaultPlan::parse("worker-panic@1:7").expect("valid spec"));
    let err = daemon
        .client()
        .run(&req)
        .expect_err("an injected worker panic must surface as an error frame");
    wp_fault::clear();
    assert!(!err.contains('\n'), "one-line typed error: {err:?}");
    assert!(
        err.contains("worker panicked") && err.contains("injected"),
        "names the panic class: {err}"
    );

    // The daemon survived its worker's panic: the very next request on
    // the same worker pool completes with the fault-free bytes.
    let after = daemon.client().run(&req).expect("post-panic served sweep");
    assert_eq!(
        after.lines, baseline.lines,
        "post-panic output must be byte-identical to the fault-free run"
    );
}

#[test]
fn daemon_side_socket_drop_is_the_typed_retryable_error_class() {
    let _guard = wp_fault::test_guard();
    let daemon = Daemon::start("sockdrop", 1);
    let req = Request::Status;
    let baseline = daemon.client().call(&req).expect("fault-free status");

    // The daemon tears the very first reply frame mid-write.
    wp_fault::install(wp_fault::FaultPlan::parse("sock-drop@1:9").expect("valid spec"));
    let err = daemon
        .client()
        .call(&req)
        .expect_err("a torn frame must surface as an error");
    wp_fault::clear();
    assert!(
        is_shutdown_error(&err),
        "torn frames map to the retryable shutdown class: {err}"
    );

    // One dropped connection, zero daemon damage: the next client gets
    // the identical full frame again (status counts no sync verbs, so
    // the frame is deterministic across the drop).
    let after = daemon.client().call(&req).expect("post-drop status");
    assert_eq!(
        after, baseline,
        "post-drop status frame diverged from fault-free"
    );
}
